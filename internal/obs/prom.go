package obs

// Prometheus text-exposition rendering of the registry — the scrape
// seam the planned opmserve daemon grows from (ROADMAP item 1). The
// mapping from the registry's slash-separated names to Prometheus
// metric names is mechanical and lossless enough to grep back:
// "sweep/job_latency" → "opm_sweep_job_latency". Histograms render as
// summaries (quantiles are precomputed from the pow2 buckets, not
// client-aggregatable histograms — the registry's buckets are
// process-local and fixed, so the summary form is the honest one) and
// spans as a pair of totals labelled by path. Output is sorted by
// metric name, so a finished run renders deterministically.

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
)

// promName converts a registry instrument name to a Prometheus metric
// name: "opm_" prefix, '/' → '_'. Registry names already match
// [a-z0-9_/]+ (enforced by opmlint counternames), so the result is a
// valid Prometheus identifier.
func promName(name string) string {
	return "opm_" + strings.ReplaceAll(name, "/", "_")
}

// promEscape escapes a label value per the exposition format
// (backslash, double quote, newline).
func promEscape(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// promLabel renders one {name="value"} label set with the value
// escaped. Every labelled series below goes through this — label
// safety is structural, not a property of today's label values.
func promLabel(name, value string) string {
	return "{" + name + `="` + promEscape(value) + `"}`
}

// promHelp writes the HELP line for a metric family. The exposition
// format wants HELP text newline- and backslash-escaped (a double
// quote is legal there, unlike in label values).
func promHelp(b *strings.Builder, metric, help string) {
	help = strings.ReplaceAll(help, `\`, `\\`)
	help = strings.ReplaceAll(help, "\n", `\n`)
	fmt.Fprintf(b, "# HELP %s %s\n", metric, help)
}

// WriteProm renders the registry in Prometheus text exposition format
// 0.0.4: counters as counters (with the conventional _total suffix),
// gauges as gauges, histograms as summaries with p50/p95/p99 quantile
// series in seconds, and span aggregates as two path-labelled counter
// families. Safe on a nil registry (writes nothing).
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	s := r.Snapshot()
	var b strings.Builder

	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		mn := promName(name) + "_total"
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", mn, mn, s.Counters[name])
	}

	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		mn := promName(name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %g\n", mn, mn, s.Gauges[name])
	}

	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		mn := promName(name) + "_seconds"
		promHelp(&b, mn, "latency summary of registry histogram "+name+
			" (p50/p95/p99 interpolated from fixed pow2 buckets)")
		fmt.Fprintf(&b, "# TYPE %s summary\n", mn)
		fmt.Fprintf(&b, "%s%s %g\n", mn, promLabel("quantile", "0.5"), float64(h.P50NS)/1e9)
		fmt.Fprintf(&b, "%s%s %g\n", mn, promLabel("quantile", "0.95"), float64(h.P95NS)/1e9)
		fmt.Fprintf(&b, "%s%s %g\n", mn, promLabel("quantile", "0.99"), float64(h.P99NS)/1e9)
		fmt.Fprintf(&b, "%s_sum %g\n", mn, float64(h.SumNS)/1e9)
		fmt.Fprintf(&b, "%s_count %d\n", mn, h.Count)
	}

	if len(s.Spans) > 0 {
		paths := make([]string, 0, len(s.Spans))
		for path := range s.Spans {
			paths = append(paths, path)
		}
		sort.Strings(paths)
		b.WriteString("# TYPE opm_span_seconds_total counter\n")
		for _, path := range paths {
			fmt.Fprintf(&b, "opm_span_seconds_total%s %g\n",
				promLabel("path", path), float64(s.Spans[path].TotalNS)/1e9)
		}
		b.WriteString("# TYPE opm_span_invocations_total counter\n")
		for _, path := range paths {
			fmt.Fprintf(&b, "opm_span_invocations_total%s %d\n",
				promLabel("path", path), s.Spans[path].Count)
		}
	}

	_, err := io.WriteString(w, b.String())
	return err
}

// PromHandler serves the registry in Prometheus exposition format —
// mounted at /metrics/prom by Serve, scrapeable with a plain
// static_config target.
func PromHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WriteProm(w); err != nil {
			// Headers are gone by the time a body write fails; count it
			// rather than pretend http.Error could still reach the client.
			r.Counter("obs/http_write_errors").Inc()
		}
	})
}
