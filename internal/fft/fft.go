// Package fft implements the Fast Fourier Transform substrate for the
// paper's FFT kernel: an iterative radix-2 Cooley-Tukey transform with
// precomputed twiddle factors, plus parallel multidimensional
// transforms that follow the 3D-FFTW decomposition the paper describes
// (1D passes along Y, then X, then Z with a transpose-like data
// exchange between passes).
package fft

import (
	"fmt"
	"math"
	"math/bits"
	"runtime"
	"sync"
)

// Plan holds the precomputed tables for transforms of one length.
// Plans are safe for concurrent use by multiple goroutines once built.
type Plan struct {
	n        int
	logN     int
	twiddle  []complex128 // n/2 forward roots of unity
	twiddleI []complex128 // conjugates for the inverse
}

// NewPlan builds a plan for length n, which must be a power of two ≥ 1.
func NewPlan(n int) (*Plan, error) {
	if n < 1 || n&(n-1) != 0 {
		return nil, fmt.Errorf("fft: length %d is not a power of two", n)
	}
	p := &Plan{n: n, logN: bits.TrailingZeros(uint(n))}
	p.twiddle = make([]complex128, n/2)
	p.twiddleI = make([]complex128, n/2)
	for k := range p.twiddle {
		s, c := math.Sincos(-2 * math.Pi * float64(k) / float64(n))
		p.twiddle[k] = complex(c, s)
		p.twiddleI[k] = complex(c, -s)
	}
	return p, nil
}

// N returns the transform length.
func (p *Plan) N() int { return p.n }

// Transform runs an in-place unnormalized DFT of x (length N). With
// inverse=true it computes the unnormalized inverse; divide by N to
// recover the input (FFT3D handles normalization for callers).
func (p *Plan) Transform(x []complex128, inverse bool) error {
	if len(x) != p.n {
		return fmt.Errorf("fft: length %d, plan is for %d", len(x), p.n)
	}
	if p.n == 1 {
		return nil
	}
	// Bit-reversal permutation.
	shift := 64 - uint(p.logN)
	for i := 0; i < p.n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	tw := p.twiddle
	if inverse {
		tw = p.twiddleI
	}
	// Iterative butterflies.
	for span := 1; span < p.n; span <<= 1 {
		step := p.n / (2 * span)
		for start := 0; start < p.n; start += 2 * span {
			k := 0
			for off := 0; off < span; off++ {
				a := x[start+off]
				b := x[start+off+span] * tw[k]
				x[start+off] = a + b
				x[start+off+span] = a - b
				k += step
			}
		}
	}
	return nil
}

// Flops returns the paper's Table 2 operation count 5·n·log2(n) for a
// length-n transform.
func Flops(n int) float64 {
	if n < 2 {
		return 0
	}
	return 5 * float64(n) * math.Log2(float64(n))
}

// FFT3D transforms a 3D array of shape (nz, ny, nx) stored x-fastest,
// in place, following the paper's 3D-FFTW pass order: all line
// transforms along Y, then along X, then along Z, each pass parallel
// over lines. The inverse is normalized by 1/(nx·ny·nz).
func FFT3D(data []complex128, nx, ny, nz int, inverse bool, workers int) error {
	if len(data) != nx*ny*nz {
		return fmt.Errorf("fft: data length %d != %d*%d*%d", len(data), nx, ny, nz)
	}
	px, err := NewPlan(nx)
	if err != nil {
		return err
	}
	py, err := NewPlan(ny)
	if err != nil {
		return err
	}
	pz, err := NewPlan(nz)
	if err != nil {
		return err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Pass 1: Y lines (stride nx) for each (z, x).
	if err := stridePass(data, py, ny, nx, nz*nx, inverse, workers, func(line int) int {
		z := line / nx
		x := line % nx
		return z*nx*ny + x
	}); err != nil {
		return err
	}
	// Pass 2: X lines (contiguous) for each (z, y).
	if err := contiguousPass(data, px, nx, ny*nz, inverse, workers); err != nil {
		return err
	}
	// Pass 3: Z lines (stride nx*ny) for each (y, x).
	if err := stridePass(data, pz, nz, nx*ny, ny*nx, inverse, workers, func(line int) int {
		return line
	}); err != nil {
		return err
	}
	if inverse {
		scale := complex(1/float64(nx*ny*nz), 0)
		for i := range data {
			data[i] *= scale
		}
	}
	return nil
}

// contiguousPass transforms `lines` contiguous segments of length n.
func contiguousPass(data []complex128, p *Plan, n, lines int, inverse bool, workers int) error {
	return parallelLines(lines, workers, func(line int) error {
		seg := data[line*n : (line+1)*n]
		return p.Transform(seg, inverse)
	})
}

// stridePass gathers a strided line into a scratch buffer, transforms
// it, and scatters it back — the cache behaviour that makes large 3D
// FFTs memory bound.
func stridePass(data []complex128, p *Plan, n, stride, lines int, inverse bool, workers int, base func(line int) int) error {
	var scratchPool = sync.Pool{New: func() any { s := make([]complex128, n); return &s }}
	return parallelLines(lines, workers, func(line int) error {
		sp := scratchPool.Get().(*[]complex128)
		scratch := *sp
		b := base(line)
		for i := 0; i < n; i++ {
			scratch[i] = data[b+i*stride]
		}
		if err := p.Transform(scratch, inverse); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			data[b+i*stride] = scratch[i]
		}
		scratchPool.Put(sp)
		return nil
	})
}

func parallelLines(lines, workers int, fn func(line int) error) error {
	if workers <= 1 || lines < 2*workers {
		for l := 0; l < lines; l++ {
			if err := fn(l); err != nil {
				return err
			}
		}
		return nil
	}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	chunk := (lines + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > lines {
			hi = lines
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			for l := lo; l < hi; l++ {
				if err := fn(l); err != nil {
					errs[w] = err
					return
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
