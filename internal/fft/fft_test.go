package fft

import (
	"math"
	"math/cmplx"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// dftRef is the O(n²) direct DFT oracle.
func dftRef(x []complex128, inverse bool) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for k := 0; k < n; k++ {
		var s complex128
		for j := 0; j < n; j++ {
			s += x[j] * cmplx.Exp(complex(0, sign*2*math.Pi*float64(k*j)/float64(n)))
		}
		out[k] = s
	}
	return out
}

func maxErr(a, b []complex128) float64 {
	worst := 0.0
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}

func randVec(n int, seed uint64) []complex128 {
	rng := rand.New(rand.NewPCG(seed, 77))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.Float64()-0.5, rng.Float64()-0.5)
	}
	return x
}

func TestNewPlanRejectsNonPow2(t *testing.T) {
	for _, n := range []int{0, -4, 3, 6, 100} {
		if _, err := NewPlan(n); err == nil {
			t.Errorf("NewPlan(%d) accepted", n)
		}
	}
	p, err := NewPlan(8)
	if err != nil || p.N() != 8 {
		t.Fatal("NewPlan(8) failed")
	}
}

func TestTransformMatchesDFT(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 32, 128} {
		p, err := NewPlan(n)
		if err != nil {
			t.Fatal(err)
		}
		x := randVec(n, uint64(n))
		want := dftRef(x, false)
		got := append([]complex128(nil), x...)
		if err := p.Transform(got, false); err != nil {
			t.Fatal(err)
		}
		if e := maxErr(want, got); e > 1e-9*float64(n) {
			t.Fatalf("n=%d: max error %v", n, e)
		}
	}
}

func TestTransformLengthMismatch(t *testing.T) {
	p, _ := NewPlan(8)
	if p.Transform(make([]complex128, 4), false) == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestForwardInverseRoundTrip(t *testing.T) {
	n := 64
	p, _ := NewPlan(n)
	x := randVec(n, 5)
	y := append([]complex128(nil), x...)
	if err := p.Transform(y, false); err != nil {
		t.Fatal(err)
	}
	if err := p.Transform(y, true); err != nil {
		t.Fatal(err)
	}
	for i := range y {
		y[i] /= complex(float64(n), 0)
	}
	if e := maxErr(x, y); e > 1e-12 {
		t.Fatalf("round trip error %v", e)
	}
}

func TestParsevalTheorem(t *testing.T) {
	n := 256
	p, _ := NewPlan(n)
	x := randVec(n, 9)
	var timeE float64
	for _, v := range x {
		timeE += real(v)*real(v) + imag(v)*imag(v)
	}
	y := append([]complex128(nil), x...)
	if err := p.Transform(y, false); err != nil {
		t.Fatal(err)
	}
	var freqE float64
	for _, v := range y {
		freqE += real(v)*real(v) + imag(v)*imag(v)
	}
	if math.Abs(freqE/float64(n)-timeE) > 1e-9*timeE {
		t.Fatalf("Parseval violated: %v vs %v", freqE/float64(n), timeE)
	}
}

func TestImpulseResponseIsFlat(t *testing.T) {
	n := 32
	p, _ := NewPlan(n)
	x := make([]complex128, n)
	x[0] = 1
	if err := p.Transform(x, false); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("impulse spectrum not flat at %d: %v", i, v)
		}
	}
}

func TestFFT3DRoundTrip(t *testing.T) {
	nx, ny, nz := 8, 16, 4
	data := randVec(nx*ny*nz, 3)
	orig := append([]complex128(nil), data...)
	if err := FFT3D(data, nx, ny, nz, false, 4); err != nil {
		t.Fatal(err)
	}
	if err := FFT3D(data, nx, ny, nz, true, 4); err != nil {
		t.Fatal(err)
	}
	if e := maxErr(orig, data); e > 1e-10 {
		t.Fatalf("3D round-trip error %v", e)
	}
}

func TestFFT3DConstantField(t *testing.T) {
	nx, ny, nz := 4, 4, 4
	n := nx * ny * nz
	data := make([]complex128, n)
	for i := range data {
		data[i] = 1
	}
	if err := FFT3D(data, nx, ny, nz, false, 1); err != nil {
		t.Fatal(err)
	}
	// DC bin holds the total mass; everything else is zero.
	if cmplx.Abs(data[0]-complex(float64(n), 0)) > 1e-9 {
		t.Fatalf("DC bin = %v, want %d", data[0], n)
	}
	for i := 1; i < n; i++ {
		if cmplx.Abs(data[i]) > 1e-9 {
			t.Fatalf("non-DC bin %d = %v", i, data[i])
		}
	}
}

func TestFFT3DSeparability(t *testing.T) {
	// A product of 1D signals transforms into the product of their 1D
	// spectra: checks the pass order and strides are consistent.
	nx, ny, nz := 8, 4, 2
	fx := randVec(nx, 1)
	fy := randVec(ny, 2)
	fz := randVec(nz, 3)
	data := make([]complex128, nx*ny*nz)
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				data[(z*ny+y)*nx+x] = fx[x] * fy[y] * fz[z]
			}
		}
	}
	if err := FFT3D(data, nx, ny, nz, false, 2); err != nil {
		t.Fatal(err)
	}
	gx, gy, gz := dftRef(fx, false), dftRef(fy, false), dftRef(fz, false)
	worst := 0.0
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				want := gx[x] * gy[y] * gz[z]
				got := data[(z*ny+y)*nx+x]
				if d := cmplx.Abs(want - got); d > worst {
					worst = d
				}
			}
		}
	}
	if worst > 1e-9 {
		t.Fatalf("separability error %v", worst)
	}
}

func TestFFT3DBadShape(t *testing.T) {
	if FFT3D(make([]complex128, 10), 2, 2, 2, false, 1) == nil {
		t.Fatal("wrong length accepted")
	}
	if FFT3D(make([]complex128, 12), 3, 2, 2, false, 1) == nil {
		t.Fatal("non-pow2 accepted")
	}
}

func TestFlopsFormula(t *testing.T) {
	if Flops(1) != 0 {
		t.Fatal("Flops(1) should be 0")
	}
	if got, want := Flops(1024), 5.0*1024*10; got != want {
		t.Fatalf("Flops(1024) = %v, want %v", got, want)
	}
}

// Property: linearity of the transform.
func TestPropertyLinearity(t *testing.T) {
	p, _ := NewPlan(64)
	f := func(seed uint64) bool {
		a := randVec(64, seed)
		b := randVec(64, seed+1)
		sum := make([]complex128, 64)
		for i := range sum {
			sum[i] = 2*a[i] + 3*b[i]
		}
		fa := append([]complex128(nil), a...)
		fb := append([]complex128(nil), b...)
		fs := append([]complex128(nil), sum...)
		if p.Transform(fa, false) != nil || p.Transform(fb, false) != nil || p.Transform(fs, false) != nil {
			return false
		}
		for i := range fs {
			if cmplx.Abs(fs[i]-(2*fa[i]+3*fb[i])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFFT3D(b *testing.B) {
	nx, ny, nz := 64, 64, 32
	data := randVec(nx*ny*nz, 1)
	b.SetBytes(int64(len(data)) * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := FFT3D(data, nx, ny, nz, i%2 == 1, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(Flops(nx*ny*nz)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFlop/s")
}

func BenchmarkBluestein(b *testing.B) {
	p, err := NewAnyPlan(96)
	if err != nil {
		b.Fatal(err)
	}
	x := randVec(96, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Transform(x, false); err != nil {
			b.Fatal(err)
		}
	}
}
