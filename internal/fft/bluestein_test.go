package fft

import (
	"math/cmplx"
	"testing"
	"testing/quick"
)

func TestAnyPlanMatchesDFT(t *testing.T) {
	// Non-powers of two, including the paper's FFT sweep sizes (96 is
	// the Appendix A.2.7 starting dimension).
	for _, n := range []int{1, 2, 3, 5, 7, 12, 96, 100, 127, 592} {
		p, err := NewAnyPlan(n)
		if err != nil {
			t.Fatal(err)
		}
		if p.N() != n {
			t.Fatal("N mismatch")
		}
		x := randVec(n, uint64(n)+1)
		want := dftRef(x, false)
		got := append([]complex128(nil), x...)
		if err := p.Transform(got, false); err != nil {
			t.Fatal(err)
		}
		if e := maxErr(want, got); e > 1e-8*float64(n) {
			t.Fatalf("n=%d: max error %v", n, e)
		}
	}
}

func TestAnyPlanInverseRoundTrip(t *testing.T) {
	for _, n := range []int{6, 96, 250} {
		p, err := NewAnyPlan(n)
		if err != nil {
			t.Fatal(err)
		}
		x := randVec(n, 77)
		y := append([]complex128(nil), x...)
		if err := p.Transform(y, false); err != nil {
			t.Fatal(err)
		}
		if err := p.Transform(y, true); err != nil {
			t.Fatal(err)
		}
		for i := range y {
			y[i] /= complex(float64(n), 0)
		}
		if e := maxErr(x, y); e > 1e-9 {
			t.Fatalf("n=%d: round trip error %v", n, e)
		}
	}
}

func TestAnyPlanErrors(t *testing.T) {
	if _, err := NewAnyPlan(0); err == nil {
		t.Fatal("zero length accepted")
	}
	p, _ := NewAnyPlan(5)
	if p.Transform(make([]complex128, 4), false) == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestAnyPlanUsesDirectPathForPow2(t *testing.T) {
	p, err := NewAnyPlan(64)
	if err != nil {
		t.Fatal(err)
	}
	if p.pow2 == nil || p.conv != nil {
		t.Fatal("power-of-two length should use the radix-2 path")
	}
}

func TestFFT3DAnyRoundTrip(t *testing.T) {
	// The paper's actual grid shape family: 96×96×96 (scaled down to
	// keep the test fast: 12×10×6).
	nx, ny, nz := 12, 10, 6
	data := randVec(nx*ny*nz, 13)
	orig := append([]complex128(nil), data...)
	if err := FFT3DAny(data, nx, ny, nz, false, 2); err != nil {
		t.Fatal(err)
	}
	if err := FFT3DAny(data, nx, ny, nz, true, 2); err != nil {
		t.Fatal(err)
	}
	if e := maxErr(orig, data); e > 1e-9 {
		t.Fatalf("round trip error %v", e)
	}
}

func TestFFT3DAnyMatchesPow2Path(t *testing.T) {
	nx, ny, nz := 8, 4, 4
	a := randVec(nx*ny*nz, 3)
	b := append([]complex128(nil), a...)
	if err := FFT3D(a, nx, ny, nz, false, 1); err != nil {
		t.Fatal(err)
	}
	if err := FFT3DAny(b, nx, ny, nz, false, 1); err != nil {
		t.Fatal(err)
	}
	if e := maxErr(a, b); e > 1e-9 {
		t.Fatalf("paths disagree by %v", e)
	}
}

func TestFFT3DAnyBadShape(t *testing.T) {
	if FFT3DAny(make([]complex128, 5), 2, 2, 2, false, 1) == nil {
		t.Fatal("wrong length accepted")
	}
}

// Property: AnyPlan matches the direct DFT for random small lengths.
func TestPropertyAnyPlanMatchesDFT(t *testing.T) {
	f := func(seed uint64) bool {
		n := 2 + int(seed%60)
		p, err := NewAnyPlan(n)
		if err != nil {
			return false
		}
		x := randVec(n, seed)
		want := dftRef(x, false)
		got := append([]complex128(nil), x...)
		if p.Transform(got, false) != nil {
			return false
		}
		for i := range got {
			if cmplx.Abs(got[i]-want[i]) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
