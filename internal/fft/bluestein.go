package fft

import (
	"fmt"
	"math"
	"math/bits"
)

// AnyPlan computes DFTs of arbitrary length: power-of-two lengths use
// the radix-2 Plan directly; other lengths use Bluestein's chirp-z
// algorithm (the DFT as a convolution evaluated with a padded
// power-of-two FFT). The paper's FFTW handles arbitrary sizes the same
// way; this extension lets the FFT workload sweep the exact grid sizes
// of Appendix A.2.7 (e.g. 96³, 592³) rather than rounding to powers of
// two.
type AnyPlan struct {
	n     int
	pow2  *Plan // direct plan when n is a power of two
	conv  *Plan // padded convolution plan otherwise
	chirp []complex128
	// bq is the precomputed FFT of the chirp filter b.
	bq []complex128
}

// NewAnyPlan builds a plan for any length n ≥ 1.
func NewAnyPlan(n int) (*AnyPlan, error) {
	if n < 1 {
		return nil, fmt.Errorf("fft: length %d must be positive", n)
	}
	p := &AnyPlan{n: n}
	if n&(n-1) == 0 {
		pl, err := NewPlan(n)
		if err != nil {
			return nil, err
		}
		p.pow2 = pl
		return p, nil
	}
	// Convolution length: the next power of two ≥ 2n-1.
	m := 1 << bits.Len(uint(2*n-2))
	conv, err := NewPlan(m)
	if err != nil {
		return nil, err
	}
	p.conv = conv
	// Chirp a_k = exp(-iπ k²/n). k² mod 2n keeps the angle exact for
	// large k.
	p.chirp = make([]complex128, n)
	for k := 0; k < n; k++ {
		kk := int64(k) * int64(k) % int64(2*n)
		s, c := math.Sincos(-math.Pi * float64(kk) / float64(n))
		p.chirp[k] = complex(c, s)
	}
	// Filter b_k = conj(chirp), wrapped: b[0]=1, b[k]=b[m-k]=conj(a_k).
	b := make([]complex128, m)
	b[0] = 1
	for k := 1; k < n; k++ {
		v := complex(real(p.chirp[k]), -imag(p.chirp[k]))
		b[k] = v
		b[m-k] = v
	}
	if err := conv.Transform(b, false); err != nil {
		return nil, err
	}
	p.bq = b
	return p, nil
}

// N returns the transform length.
func (p *AnyPlan) N() int { return p.n }

// Transform computes the in-place unnormalized DFT (or unnormalized
// inverse) of x, which must have length N.
func (p *AnyPlan) Transform(x []complex128, inverse bool) error {
	if len(x) != p.n {
		return fmt.Errorf("fft: length %d, plan is for %d", len(x), p.n)
	}
	if p.pow2 != nil {
		return p.pow2.Transform(x, inverse)
	}
	// Inverse via conjugation: IDFT(x) = conj(DFT(conj(x))).
	if inverse {
		conjInPlace(x)
	}
	m := p.conv.N()
	a := make([]complex128, m)
	for k := 0; k < p.n; k++ {
		a[k] = x[k] * p.chirp[k]
	}
	if err := p.conv.Transform(a, false); err != nil {
		return err
	}
	for k := range a {
		a[k] *= p.bq[k]
	}
	if err := p.conv.Transform(a, true); err != nil {
		return err
	}
	scale := complex(1/float64(m), 0)
	for k := 0; k < p.n; k++ {
		x[k] = a[k] * scale * p.chirp[k]
	}
	if inverse {
		conjInPlace(x)
	}
	return nil
}

func conjInPlace(x []complex128) {
	for i := range x {
		x[i] = complex(real(x[i]), -imag(x[i]))
	}
}

// FFT3DAny transforms a 3D array of any (nz, ny, nx) shape in place,
// pass-ordered like FFT3D. The inverse is normalized.
func FFT3DAny(data []complex128, nx, ny, nz int, inverse bool, workers int) error {
	if len(data) != nx*ny*nz {
		return fmt.Errorf("fft: data length %d != %d*%d*%d", len(data), nx, ny, nz)
	}
	px, err := NewAnyPlan(nx)
	if err != nil {
		return err
	}
	py, err := NewAnyPlan(ny)
	if err != nil {
		return err
	}
	pz, err := NewAnyPlan(nz)
	if err != nil {
		return err
	}
	// Y pass.
	if err := anyStridePass(data, py, ny, nx, nz*nx, inverse, workers, func(line int) int {
		z := line / nx
		x := line % nx
		return z*nx*ny + x
	}); err != nil {
		return err
	}
	// X pass (contiguous).
	if err := parallelLines(ny*nz, workers, func(line int) error {
		return px.Transform(data[line*nx:(line+1)*nx], inverse)
	}); err != nil {
		return err
	}
	// Z pass.
	if err := anyStridePass(data, pz, nz, nx*ny, ny*nx, inverse, workers, func(line int) int {
		return line
	}); err != nil {
		return err
	}
	if inverse {
		scale := complex(1/float64(nx*ny*nz), 0)
		for i := range data {
			data[i] *= scale
		}
	}
	return nil
}

func anyStridePass(data []complex128, p *AnyPlan, n, stride, lines int, inverse bool, workers int, base func(line int) int) error {
	return parallelLines(lines, workers, func(line int) error {
		scratch := make([]complex128, n)
		b := base(line)
		for i := 0; i < n; i++ {
			scratch[i] = data[b+i*stride]
		}
		if err := p.Transform(scratch, inverse); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			data[b+i*stride] = scratch[i]
		}
		return nil
	})
}
