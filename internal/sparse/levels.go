package sparse

import "fmt"

// LevelSchedule is the dependency levelization of a lower-triangular
// system used by synchronization-sparsifying SpTRSV solvers (SpMP,
// Park et al. — the implementation the paper benchmarks): rows in the
// same level have no dependencies among themselves and can be solved
// in parallel; levels execute in order.
type LevelSchedule struct {
	// Order lists row indices grouped by level, innermost first.
	Order []int32
	// Ptr delimits levels within Order (len = Levels+1).
	Ptr []int64
}

// Levels returns the number of dependency levels.
func (s *LevelSchedule) Levels() int { return len(s.Ptr) - 1 }

// Rows returns the total number of scheduled rows.
func (s *LevelSchedule) Rows() int { return len(s.Order) }

// AvgParallelism returns rows/levels — the average number of rows
// solvable concurrently, the quantity that throttles SpTRSV's
// memory-level parallelism in the timing model.
func (s *LevelSchedule) AvgParallelism() float64 {
	if s.Levels() == 0 {
		return 0
	}
	return float64(s.Rows()) / float64(s.Levels())
}

// MaxWidth returns the widest level.
func (s *LevelSchedule) MaxWidth() int {
	w := 0
	for l := 0; l < s.Levels(); l++ {
		if n := int(s.Ptr[l+1] - s.Ptr[l]); n > w {
			w = n
		}
	}
	return w
}

// BuildLevels computes the level schedule of a lower-triangular CSR
// matrix: level(i) = 1 + max(level(j)) over strictly-lower entries
// (i, j). The matrix must be square with a full diagonal (as produced
// by CSR.LowerTriangle).
func BuildLevels(l *CSR) (*LevelSchedule, error) {
	if l.Rows != l.Cols {
		return nil, fmt.Errorf("sparse: BuildLevels needs square matrix, got %dx%d", l.Rows, l.Cols)
	}
	n := l.Rows
	level := make([]int32, n)
	maxLevel := int32(0)
	for i := 0; i < n; i++ {
		lv := int32(0)
		diag := false
		for p := l.RowPtr[i]; p < l.RowPtr[i+1]; p++ {
			c := l.ColIdx[p]
			switch {
			case int(c) < i:
				if dep := level[c] + 1; dep > lv {
					lv = dep
				}
			case int(c) == i:
				diag = true
			default:
				return nil, fmt.Errorf("sparse: BuildLevels: upper entry (%d,%d)", i, c)
			}
		}
		if !diag {
			return nil, fmt.Errorf("sparse: BuildLevels: missing diagonal in row %d", i)
		}
		level[i] = lv
		if lv > maxLevel {
			maxLevel = lv
		}
	}
	// Counting sort rows by level.
	s := &LevelSchedule{
		Order: make([]int32, n),
		Ptr:   make([]int64, maxLevel+2),
	}
	for _, lv := range level {
		s.Ptr[lv+1]++
	}
	for l := int32(0); l <= maxLevel; l++ {
		s.Ptr[l+1] += s.Ptr[l]
	}
	cursor := make([]int64, maxLevel+1)
	copy(cursor, s.Ptr[:maxLevel+1])
	for i := 0; i < n; i++ {
		lv := level[i]
		s.Order[cursor[lv]] = int32(i)
		cursor[lv]++
	}
	return s, nil
}
