package sparse

import (
	"strings"
	"testing"
)

func TestFamilyString(t *testing.T) {
	for f := Family(0); f < NumFamilies; f++ {
		if s := f.String(); s == "" || strings.Contains(s, "family(") {
			t.Errorf("family %d has no name", int(f))
		}
	}
	if !strings.Contains(Family(99).String(), "99") {
		t.Error("unknown family should render its number")
	}
}

func TestGeneratorsProduceValidSquareMatrices(t *testing.T) {
	gens := map[string]*CSR{
		"banded":    Banded(300, 32, 8, 1),
		"random":    RandomUniform(300, 8, 2),
		"rmat":      RMAT(256, 2000, 3),
		"blockdiag": BlockDiag(300, 10, 4),
		"poisson2d": Poisson2D(20),
		"poisson3d": Poisson3D(8),
		"tridiag":   Tridiag(300),
		"arrow":     Arrow(300, 8, 5),
	}
	for name, m := range gens {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: invalid: %v", name, err)
		}
		if m.Rows != m.Cols {
			t.Errorf("%s: not square (%dx%d)", name, m.Rows, m.Cols)
		}
		if m.NNZ() < m.Rows {
			t.Errorf("%s: too sparse (%d nnz, %d rows)", name, m.NNZ(), m.Rows)
		}
	}
}

func TestGeneratorsAreDeterministic(t *testing.T) {
	a := RandomUniform(200, 8, 123)
	b := RandomUniform(200, 8, 123)
	if !equalCSR(a, b) {
		t.Fatal("same seed must reproduce the same matrix")
	}
	c := RandomUniform(200, 8, 124)
	if equalCSR(a, c) {
		t.Fatal("different seeds should differ")
	}
}

func TestBandedRespectsBandwidth(t *testing.T) {
	m := Banded(500, 40, 10, 9)
	mt := Measure(m)
	if mt.Bandwidth > 20 {
		t.Fatalf("banded matrix bandwidth %d exceeds half-band 20", mt.Bandwidth)
	}
}

func TestPoisson2DStructure(t *testing.T) {
	k := 10
	m := Poisson2D(k)
	if m.Rows != k*k {
		t.Fatalf("rows = %d, want %d", m.Rows, k*k)
	}
	// Interior point has 5 entries; corner has 3.
	if got := m.RowNNZ(k + 1); got != 5 {
		t.Errorf("interior row nnz = %d, want 5", got)
	}
	if got := m.RowNNZ(0); got != 3 {
		t.Errorf("corner row nnz = %d, want 3", got)
	}
	// Row sums: diagonal 4 minus neighbours.
	if m.At(0, 0) != 4 || m.At(0, 1) != -1 || m.At(0, k) != -1 {
		t.Error("poisson2d stencil coefficients wrong")
	}
}

func TestPoisson3DStructure(t *testing.T) {
	k := 6
	m := Poisson3D(k)
	if m.Rows != k*k*k {
		t.Fatalf("rows = %d, want %d", m.Rows, k*k*k)
	}
	center := (k/2*k+k/2)*k + k/2
	if got := m.RowNNZ(center); got != 7 {
		t.Errorf("interior row nnz = %d, want 7", got)
	}
}

func TestArrowStructure(t *testing.T) {
	m := Arrow(100, 4, 11)
	// Rows beyond the head hold width + diagonal entries.
	if got := m.RowNNZ(50); got != 5 {
		t.Errorf("arrow row nnz = %d, want 5", got)
	}
	mt := Measure(m)
	if mt.MaxRowNNZ < 90 {
		t.Errorf("arrow head rows should be dense, max row nnz = %d", mt.MaxRowNNZ)
	}
}

func TestMeasureMetrics(t *testing.T) {
	m := Tridiag(10)
	mt := Measure(m)
	if mt.Rows != 10 || mt.NNZ != 28 {
		t.Fatalf("metrics rows/nnz = %d/%d", mt.Rows, mt.NNZ)
	}
	if mt.Bandwidth != 1 {
		t.Fatalf("tridiag bandwidth = %d, want 1", mt.Bandwidth)
	}
	if mt.MaxRowNNZ != 3 {
		t.Fatalf("max row nnz = %d, want 3", mt.MaxRowNNZ)
	}
	if mt.AvgRowNNZ != 2.8 {
		t.Fatalf("avg row nnz = %v, want 2.8", mt.AvgRowNNZ)
	}
	if mt.DiagDominance != 0 { // 2 = 1+1 not strictly dominant except ends
		// ends have |2| > |-1|: 2 of 10 rows dominant
		t.Logf("diag dominance = %v", mt.DiagDominance)
	}
}

func TestCollectionProperties(t *testing.T) {
	specs := Collection()
	if len(specs) != CollectionSize {
		t.Fatalf("collection size = %d, want %d", len(specs), CollectionSize)
	}
	famSeen := map[Family]int{}
	for i, sp := range specs {
		if sp.ID != i {
			t.Fatalf("spec %d has ID %d", i, sp.ID)
		}
		if sp.PaperFootprint < minPaperFootprint || sp.PaperFootprint > maxPaperFootprint {
			t.Fatalf("spec %d footprint %d outside envelope", i, sp.PaperFootprint)
		}
		famSeen[sp.Family]++
	}
	if len(famSeen) != int(NumFamilies) {
		t.Fatalf("only %d families present", len(famSeen))
	}
}

func TestCollectionInstantiateScalesFootprint(t *testing.T) {
	specs := Collection()
	sp := specs[0]
	m64 := sp.Instantiate(64)
	m128 := sp.Instantiate(128)
	if err := m64.Validate(); err != nil {
		t.Fatal(err)
	}
	f64, f128 := m64.FootprintBytes(), m128.FootprintBytes()
	ratio := float64(f64) / float64(f128)
	if ratio < 1.5 || ratio > 3 {
		t.Fatalf("scale 64 vs 128 footprint ratio = %v, want ~2", ratio)
	}
	// Footprint should be within 2x of target.
	target := sp.PaperFootprint / 64
	if f64 < target/2 || f64 > target*2 {
		t.Fatalf("instantiated footprint %d vs target %d", f64, target)
	}
}

func TestCollectionInstantiateDeterministic(t *testing.T) {
	sp := Collection()[17]
	a := sp.Instantiate(64)
	b := sp.Instantiate(64)
	if !equalCSR(a, b) {
		t.Fatal("instantiation must be deterministic")
	}
}

func TestCollectionAllFamiliesInstantiate(t *testing.T) {
	specs := Collection()
	seen := map[Family]bool{}
	for _, sp := range specs {
		if seen[sp.Family] {
			continue
		}
		seen[sp.Family] = true
		m := sp.Instantiate(256) // small for test speed
		if err := m.Validate(); err != nil {
			t.Fatalf("%s: %v", sp.Name, err)
		}
		if m.Rows != m.Cols {
			t.Fatalf("%s: not square", sp.Name)
		}
		if len(seen) == int(NumFamilies) {
			break
		}
	}
}

func TestSubsampleAndFilter(t *testing.T) {
	specs := Collection()
	sub := Subsample(specs, 8)
	if len(sub) != 121 {
		t.Fatalf("subsample len = %d, want 121", len(sub))
	}
	if Subsample(specs, 1)[5].ID != 5 {
		t.Fatal("stride 1 should return all")
	}
	filtered := FilterMaxFootprint(specs, 1<<30)
	for _, sp := range filtered {
		if sp.PaperFootprint > 1<<30 {
			t.Fatal("filter leaked a large spec")
		}
	}
	if len(filtered) == 0 || len(filtered) == len(specs) {
		t.Fatalf("filter should drop some, keep some: %d of %d", len(filtered), len(specs))
	}
}
