package sparse

import (
	"bytes"
	"strings"
	"testing"
)

func TestMatrixMarketRoundTrip(t *testing.T) {
	m := RMAT(100, 600, 21)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !equalCSR(m, back) {
		t.Fatal("round trip changed the matrix")
	}
}

func TestReadMatrixMarketSymmetric(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real symmetric
% a comment
3 3 3
1 1 2.0
2 1 -1.0
3 3 5.0
`
	m, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 4 { // off-diagonal mirrored
		t.Fatalf("nnz = %d, want 4", m.NNZ())
	}
	if m.At(0, 1) != -1 || m.At(1, 0) != -1 {
		t.Fatal("symmetric expansion missing")
	}
}

func TestReadMatrixMarketPattern(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate pattern general
2 2 2
1 1
2 2
`
	m, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 1 || m.At(1, 1) != 1 {
		t.Fatal("pattern entries should default to 1")
	}
}

func TestReadMatrixMarketErrors(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"bad header":   "%%NotMatrixMarket\n1 1 1\n1 1 1\n",
		"array format": "%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n",
		"bad field":    "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n",
		"bad symmetry": "%%MatrixMarket matrix coordinate real hermitian\n1 1 1\n1 1 1\n",
		"short entry":  "%%MatrixMarket matrix coordinate real general\n2 2 1\n1\n",
		"out of range": "%%MatrixMarket matrix coordinate real general\n2 2 1\n5 1 1.0\n",
		"truncated":    "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n",
		"bad value":    "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 xyz\n",
		"bad row":      "%%MatrixMarket matrix coordinate real general\n1 1 1\nx 1 1.0\n",
		"bad dims":     "%%MatrixMarket matrix coordinate real general\n0 0 0\n",
	}
	for name, in := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestWriteMatrixMarketHeader(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, Tridiag(3)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "%%MatrixMarket matrix coordinate real general\n3 3 7\n") {
		t.Fatalf("bad header: %q", out[:60])
	}
	// 1-based indices.
	if !strings.Contains(out, "1 1 2") {
		t.Fatal("expected 1-based diagonal entry")
	}
}
