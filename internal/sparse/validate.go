package sparse

import (
	"fmt"
	"math"
)

// This file is the input-validation edge of the generator suite:
// matgen flags and collection specs are rejected here, with an error
// naming the bad parameter, instead of flowing into a generator that
// would panic (or silently clamp) deep inside CSR assembly.

// CheckDims rejects non-positive matrix dimensions with a clear error;
// what is the caller's name for the parameter ("rows", "n", "band").
func CheckDims(what string, n int) error {
	if n <= 0 {
		return fmt.Errorf("sparse: %s must be positive, got %d", what, n)
	}
	return nil
}

// CheckDensity rejects a NaN or out-of-range nonzero density (the
// fraction of entries present, in (0, 1]).
func CheckDensity(d float64) error {
	if math.IsNaN(d) {
		return fmt.Errorf("sparse: density is NaN")
	}
	if d <= 0 || d > 1 {
		return fmt.Errorf("sparse: density %g out of (0, 1]", d)
	}
	return nil
}

// Validate checks a collection spec before instantiation: family in
// range, positive paper footprint and row length. Hand-built specs
// (tests, tooling) go through the same gate the collection does.
func (sp Spec) Validate() error {
	if sp.Family < 0 || sp.Family >= NumFamilies {
		return fmt.Errorf("sparse: spec %q: unknown family %d (have 0..%d)",
			sp.Name, int(sp.Family), int(NumFamilies)-1)
	}
	if sp.PaperFootprint <= 0 {
		return fmt.Errorf("sparse: spec %q: paper footprint must be positive, got %d",
			sp.Name, sp.PaperFootprint)
	}
	if sp.RowNNZ <= 0 {
		return fmt.Errorf("sparse: spec %q: target row length must be positive, got %d",
			sp.Name, sp.RowNNZ)
	}
	return nil
}

// Checked is Instantiate behind the validation gate: a malformed spec
// or a non-positive scale returns an error instead of clamping or
// panicking downstream. This is what the harness sweeps call.
func (sp Spec) Checked(scale int64) (*CSR, error) {
	if scale < 1 {
		return nil, fmt.Errorf("sparse: spec %q: scale divisor must be >= 1, got %d", sp.Name, scale)
	}
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	return sp.Instantiate(scale), nil
}

// RandomDensity generates an n×n uniformly random matrix with the
// given nonzero density (fraction of entries present per row, plus the
// diagonal), validating both inputs — the matgen -gen entry point.
func RandomDensity(n int, density float64, seed uint64) (*CSR, error) {
	if err := CheckDims("n", n); err != nil {
		return nil, err
	}
	if err := CheckDensity(density); err != nil {
		return nil, err
	}
	nnzPerRow := int(math.Round(density * float64(n)))
	if nnzPerRow < 1 {
		nnzPerRow = 1
	}
	return RandomUniform(n, nnzPerRow, seed), nil
}
