package sparse

// Transpose computes Aᵀ in CSR form using the two-round scan algorithm
// of ScanTrans (Wang et al., ICS'16 — the SpTRANS implementation the
// paper benchmarks on Broadwell): a histogram round counting entries
// per output row, a prefix-sum round producing the output row
// pointers, and a scatter round placing each entry. The scatter writes
// are the random-access pattern that makes SpTRANS memory bound.
func Transpose(m *CSR) *CSR {
	t := &CSR{
		Rows:   m.Cols,
		Cols:   m.Rows,
		RowPtr: make([]int64, m.Cols+1),
		ColIdx: make([]int32, m.NNZ()),
		Val:    make([]float64, m.NNZ()),
	}
	// Round 1: histogram of destination rows (= source columns).
	for _, c := range m.ColIdx {
		t.RowPtr[c+1]++
	}
	// Round 2: exclusive prefix sum.
	for i := 0; i < m.Cols; i++ {
		t.RowPtr[i+1] += t.RowPtr[i]
	}
	// Round 3: scatter. Because source rows are visited in order, the
	// row indices written into each destination segment are already
	// increasing — no per-segment sort needed afterwards.
	cursor := make([]int64, m.Cols)
	copy(cursor, t.RowPtr[:m.Cols])
	for i := 0; i < m.Rows; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			c := m.ColIdx[p]
			dst := cursor[c]
			t.ColIdx[dst] = int32(i)
			t.Val[dst] = m.Val[p]
			cursor[c] = dst + 1
		}
	}
	return t
}

// TransposeToCSC converts a CSR matrix into the CSC format of the same
// matrix — the operation the paper's SpTRANS kernel performs. The CSC
// of A shares its layout with the CSR of Aᵀ.
func TransposeToCSC(m *CSR) *CSC {
	t := Transpose(m)
	return &CSC{Rows: m.Rows, Cols: m.Cols, ColPtr: t.RowPtr, RowIdx: t.ColIdx, Val: t.Val}
}
