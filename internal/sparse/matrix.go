// Package sparse provides the sparse-matrix substrate for the
// reproduction: COO/CSR/CSC storage, format conversion and
// transposition, Matrix Market I/O, segmented sorting of column
// indices, level scheduling for triangular solves, structure metrics,
// and a synthetic 968-matrix collection standing in for the University
// of Florida Sparse Matrix Collection subset used by the paper.
package sparse

import (
	"fmt"
	"sort"
)

// COO is a coordinate-format sparse matrix. Entries may be unsorted
// and (before Dedup) may contain duplicates.
type COO struct {
	Rows, Cols int
	RowIdx     []int32
	ColIdx     []int32
	Val        []float64
}

// NNZ returns the number of stored entries.
func (a *COO) NNZ() int { return len(a.Val) }

// Add appends an entry.
func (a *COO) Add(i, j int, v float64) {
	a.RowIdx = append(a.RowIdx, int32(i))
	a.ColIdx = append(a.ColIdx, int32(j))
	a.Val = append(a.Val, v)
}

// Validate checks index bounds and shape.
func (a *COO) Validate() error {
	if a.Rows < 0 || a.Cols < 0 {
		return fmt.Errorf("sparse: negative dimensions %dx%d", a.Rows, a.Cols)
	}
	if len(a.RowIdx) != len(a.Val) || len(a.ColIdx) != len(a.Val) {
		return fmt.Errorf("sparse: ragged COO arrays (%d,%d,%d)",
			len(a.RowIdx), len(a.ColIdx), len(a.Val))
	}
	for k := range a.Val {
		if r := a.RowIdx[k]; r < 0 || int(r) >= a.Rows {
			return fmt.Errorf("sparse: row index %d out of range at entry %d", r, k)
		}
		if c := a.ColIdx[k]; c < 0 || int(c) >= a.Cols {
			return fmt.Errorf("sparse: col index %d out of range at entry %d", c, k)
		}
	}
	return nil
}

// ToCSR converts to CSR, summing duplicate entries. Column indices
// within each row come out sorted.
func (a *COO) ToCSR() (*CSR, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	m := &CSR{Rows: a.Rows, Cols: a.Cols, RowPtr: make([]int64, a.Rows+1)}
	for _, r := range a.RowIdx {
		m.RowPtr[r+1]++
	}
	for i := 0; i < a.Rows; i++ {
		m.RowPtr[i+1] += m.RowPtr[i]
	}
	nnz := int(m.RowPtr[a.Rows])
	m.ColIdx = make([]int32, nnz)
	m.Val = make([]float64, nnz)
	cursor := make([]int64, a.Rows)
	copy(cursor, m.RowPtr[:a.Rows])
	for k := range a.Val {
		r := a.RowIdx[k]
		p := cursor[r]
		m.ColIdx[p] = a.ColIdx[k]
		m.Val[p] = a.Val[k]
		cursor[r]++
	}
	m.SortRows()
	m.dedupSortedInPlace()
	return m, nil
}

// CSR is a compressed-sparse-row matrix: the central format of the
// evaluated kernels (CSR5-based SpMV, ScanTrans, SpMP SpTRSV all start
// from CSR).
type CSR struct {
	Rows, Cols int
	RowPtr     []int64 // length Rows+1
	ColIdx     []int32 // length NNZ
	Val        []float64
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Val) }

// RowNNZ returns the number of entries in row i.
func (m *CSR) RowNNZ(i int) int { return int(m.RowPtr[i+1] - m.RowPtr[i]) }

// FootprintBytes returns the CSR storage footprint using the paper's
// Table 2 accounting: 8-byte values, 4-byte column indices, plus row
// pointers and the dense vectors a kernel streams (x and y for SpMV).
func (m *CSR) FootprintBytes() int64 {
	return int64(m.NNZ())*12 + int64(m.Rows+1)*4 + int64(m.Rows)*16
}

// Validate checks structural invariants: monotone row pointers, index
// bounds, and per-row sorted unique columns.
func (m *CSR) Validate() error {
	if len(m.RowPtr) != m.Rows+1 {
		return fmt.Errorf("sparse: rowptr length %d, want %d", len(m.RowPtr), m.Rows+1)
	}
	if m.RowPtr[0] != 0 {
		return fmt.Errorf("sparse: rowptr[0] = %d, want 0", m.RowPtr[0])
	}
	if int(m.RowPtr[m.Rows]) != len(m.Val) || len(m.ColIdx) != len(m.Val) {
		return fmt.Errorf("sparse: nnz mismatch rowptr=%d colidx=%d val=%d",
			m.RowPtr[m.Rows], len(m.ColIdx), len(m.Val))
	}
	for i := 0; i < m.Rows; i++ {
		if m.RowPtr[i+1] < m.RowPtr[i] {
			return fmt.Errorf("sparse: rowptr not monotone at row %d", i)
		}
		prev := int32(-1)
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			c := m.ColIdx[p]
			if c < 0 || int(c) >= m.Cols {
				return fmt.Errorf("sparse: col %d out of range in row %d", c, i)
			}
			if c <= prev {
				return fmt.Errorf("sparse: row %d columns not strictly increasing at %d", i, p)
			}
			prev = c
		}
	}
	return nil
}

// SortRows sorts the column indices (and values) within each row — the
// paper's segmented-sort preprocessing step. Implemented as a
// segmented sort over (RowPtr) segments; see segsort.go for the
// underlying routine.
func (m *CSR) SortRows() {
	SegmentedSort(m.RowPtr, m.ColIdx, m.Val)
}

// dedupSortedInPlace merges duplicate (row, col) entries by summing
// values; rows must already be sorted.
func (m *CSR) dedupSortedInPlace() {
	out := int64(0)
	newPtr := make([]int64, len(m.RowPtr))
	for i := 0; i < m.Rows; i++ {
		newPtr[i] = out
		start, end := m.RowPtr[i], m.RowPtr[i+1]
		for p := start; p < end; {
			c := m.ColIdx[p]
			v := m.Val[p]
			q := p + 1
			for q < end && m.ColIdx[q] == c {
				v += m.Val[q]
				q++
			}
			m.ColIdx[out] = c
			m.Val[out] = v
			out++
			p = q
		}
	}
	newPtr[m.Rows] = out
	copy(m.RowPtr, newPtr)
	m.ColIdx = m.ColIdx[:out]
	m.Val = m.Val[:out]
}

// At returns the entry (i, j), or zero when absent. O(log row nnz).
func (m *CSR) At(i, j int) float64 {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	seg := m.ColIdx[lo:hi]
	k := sort.Search(len(seg), func(p int) bool { return seg[p] >= int32(j) })
	if k < len(seg) && seg[k] == int32(j) {
		return m.Val[lo+int64(k)]
	}
	return 0
}

// Clone returns a deep copy.
func (m *CSR) Clone() *CSR {
	c := &CSR{
		Rows:   m.Rows,
		Cols:   m.Cols,
		RowPtr: append([]int64(nil), m.RowPtr...),
		ColIdx: append([]int32(nil), m.ColIdx...),
		Val:    append([]float64(nil), m.Val...),
	}
	return c
}

// ToCOO converts to coordinate format.
func (m *CSR) ToCOO() *COO {
	a := &COO{
		Rows:   m.Rows,
		Cols:   m.Cols,
		RowIdx: make([]int32, m.NNZ()),
		ColIdx: append([]int32(nil), m.ColIdx...),
		Val:    append([]float64(nil), m.Val...),
	}
	for i := 0; i < m.Rows; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			a.RowIdx[p] = int32(i)
		}
	}
	return a
}

// LowerTriangle extracts the lower-triangular part of a square matrix
// and forces a nonsingular diagonal (the paper adds a diagonal to
// singular inputs before SpTRSV, Appendix A.2.5).
func (m *CSR) LowerTriangle() (*CSR, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("sparse: LowerTriangle needs a square matrix, got %dx%d", m.Rows, m.Cols)
	}
	l := &CSR{Rows: m.Rows, Cols: m.Cols, RowPtr: make([]int64, m.Rows+1)}
	for i := 0; i < m.Rows; i++ {
		l.RowPtr[i] = int64(len(l.Val))
		hasDiag := false
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			c := m.ColIdx[p]
			if int(c) > i {
				break
			}
			v := m.Val[p]
			if int(c) == i {
				hasDiag = true
				if v == 0 {
					v = 1
				}
			}
			l.ColIdx = append(l.ColIdx, c)
			l.Val = append(l.Val, v)
		}
		if !hasDiag {
			l.ColIdx = append(l.ColIdx, int32(i))
			l.Val = append(l.Val, 1)
		}
	}
	l.RowPtr[m.Rows] = int64(len(l.Val))
	l.SortRows()
	return l, nil
}

// CSC is a compressed-sparse-column matrix, the output format of
// SpTRANS (CSR -> CSC conversion is a transposition of the underlying
// structure).
type CSC struct {
	Rows, Cols int
	ColPtr     []int64
	RowIdx     []int32
	Val        []float64
}

// NNZ returns the number of stored entries.
func (m *CSC) NNZ() int { return len(m.Val) }

// Validate checks the CSC structural invariants.
func (m *CSC) Validate() error {
	t := &CSR{Rows: m.Cols, Cols: m.Rows, RowPtr: m.ColPtr, ColIdx: m.RowIdx, Val: m.Val}
	if err := t.Validate(); err != nil {
		return fmt.Errorf("sparse: CSC invalid (as transposed CSR): %w", err)
	}
	return nil
}

// ToCSR reinterprets the CSC as the CSR of the transposed matrix and
// converts it back to a CSR of the same matrix.
func (m *CSC) ToCSR() *CSR {
	t := &CSR{Rows: m.Cols, Cols: m.Rows, RowPtr: m.ColPtr, ColIdx: m.RowIdx, Val: m.Val}
	return Transpose(t)
}
