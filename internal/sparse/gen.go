package sparse

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Family identifies a synthetic matrix structure family. The families
// span the locality spectrum of the UF collection: from perfectly
// banded (circuit/PDE-like) through block structures to scale-free
// graphs with power-law rows (web/social-network-like).
type Family int

// Matrix structure families.
const (
	FamBanded Family = iota
	FamRandomUniform
	FamRMAT
	FamBlockDiag
	FamPoisson2D
	FamPoisson3D
	FamTridiag
	FamArrow
	NumFamilies
)

// String returns the family name.
func (f Family) String() string {
	switch f {
	case FamBanded:
		return "banded"
	case FamRandomUniform:
		return "random"
	case FamRMAT:
		return "rmat"
	case FamBlockDiag:
		return "blockdiag"
	case FamPoisson2D:
		return "poisson2d"
	case FamPoisson3D:
		return "poisson3d"
	case FamTridiag:
		return "tridiag"
	case FamArrow:
		return "arrow"
	}
	return fmt.Sprintf("family(%d)", int(f))
}

func newRNG(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

// Banded generates an n×n matrix with entries within |i-j| <= band/2,
// averaging nnzPerRow entries per row. Excellent spatial locality.
func Banded(n, band, nnzPerRow int, seed uint64) *CSR {
	if band < nnzPerRow {
		band = nnzPerRow
	}
	rng := newRNG(seed)
	coo := &COO{Rows: n, Cols: n}
	half := band / 2
	for i := 0; i < n; i++ {
		coo.Add(i, i, diagVal(rng))
		for k := 1; k < nnzPerRow; k++ {
			off := rng.IntN(2*half+1) - half
			j := i + off
			if j < 0 || j >= n || j == i {
				continue
			}
			coo.Add(i, j, offVal(rng))
		}
	}
	return mustCSR(coo)
}

// RandomUniform generates an n×n matrix with nnzPerRow uniformly
// random columns per row plus the diagonal. Worst-case gather
// locality for SpMV's x vector.
func RandomUniform(n, nnzPerRow int, seed uint64) *CSR {
	rng := newRNG(seed)
	coo := &COO{Rows: n, Cols: n}
	for i := 0; i < n; i++ {
		coo.Add(i, i, diagVal(rng))
		for k := 1; k < nnzPerRow; k++ {
			coo.Add(i, rng.IntN(n), offVal(rng))
		}
	}
	return mustCSR(coo)
}

// RMAT generates a recursive-matrix (Kronecker-like) power-law graph
// with roughly nnz entries plus a full diagonal: a stand-in for the
// scale-free web/social matrices of the UF collection.
func RMAT(n, nnz int, seed uint64) *CSR {
	rng := newRNG(seed)
	levels := 0
	for 1<<levels < n {
		levels++
	}
	size := 1 << levels
	const a, b, c = 0.57, 0.19, 0.19 // standard Graph500 parameters
	coo := &COO{Rows: n, Cols: n}
	for i := 0; i < n; i++ {
		coo.Add(i, i, diagVal(rng))
	}
	for e := 0; e < nnz; e++ {
		r, cIdx := 0, 0
		for bit := size / 2; bit >= 1; bit /= 2 {
			p := rng.Float64()
			switch {
			case p < a:
			case p < a+b:
				cIdx += bit
			case p < a+b+c:
				r += bit
			default:
				r += bit
				cIdx += bit
			}
		}
		if r < n && cIdx < n && r != cIdx {
			coo.Add(r, cIdx, offVal(rng))
		}
	}
	return mustCSR(coo)
}

// BlockDiag generates an n×n matrix of dense blockSize×blockSize
// diagonal blocks: FEM-like structure with strong reuse inside blocks.
func BlockDiag(n, blockSize int, seed uint64) *CSR {
	rng := newRNG(seed)
	coo := &COO{Rows: n, Cols: n}
	for b0 := 0; b0 < n; b0 += blockSize {
		end := b0 + blockSize
		if end > n {
			end = n
		}
		for i := b0; i < end; i++ {
			for j := b0; j < end; j++ {
				if i == j {
					coo.Add(i, j, diagVal(rng))
				} else {
					coo.Add(i, j, offVal(rng))
				}
			}
		}
	}
	return mustCSR(coo)
}

// Poisson2D generates the 5-point finite-difference Laplacian on a
// k×k grid (n = k²) — the classic PDE matrix.
func Poisson2D(k int) *CSR {
	n := k * k
	coo := &COO{Rows: n, Cols: n}
	idx := func(x, y int) int { return y*k + x }
	for y := 0; y < k; y++ {
		for x := 0; x < k; x++ {
			i := idx(x, y)
			coo.Add(i, i, 4)
			if x > 0 {
				coo.Add(i, idx(x-1, y), -1)
			}
			if x < k-1 {
				coo.Add(i, idx(x+1, y), -1)
			}
			if y > 0 {
				coo.Add(i, idx(x, y-1), -1)
			}
			if y < k-1 {
				coo.Add(i, idx(x, y+1), -1)
			}
		}
	}
	return mustCSR(coo)
}

// Poisson3D generates the 7-point Laplacian on a k×k×k grid (n = k³).
func Poisson3D(k int) *CSR {
	n := k * k * k
	coo := &COO{Rows: n, Cols: n}
	idx := func(x, y, z int) int { return (z*k+y)*k + x }
	for z := 0; z < k; z++ {
		for y := 0; y < k; y++ {
			for x := 0; x < k; x++ {
				i := idx(x, y, z)
				coo.Add(i, i, 6)
				if x > 0 {
					coo.Add(i, idx(x-1, y, z), -1)
				}
				if x < k-1 {
					coo.Add(i, idx(x+1, y, z), -1)
				}
				if y > 0 {
					coo.Add(i, idx(x, y-1, z), -1)
				}
				if y < k-1 {
					coo.Add(i, idx(x, y+1, z), -1)
				}
				if z > 0 {
					coo.Add(i, idx(x, y, z-1), -1)
				}
				if z < k-1 {
					coo.Add(i, idx(x, y, z+1), -1)
				}
			}
		}
	}
	return mustCSR(coo)
}

// Tridiag generates the n×n tridiagonal [-1, 2, -1] matrix.
func Tridiag(n int) *CSR {
	coo := &COO{Rows: n, Cols: n}
	for i := 0; i < n; i++ {
		coo.Add(i, i, 2)
		if i > 0 {
			coo.Add(i, i-1, -1)
		}
		if i < n-1 {
			coo.Add(i, i+1, -1)
		}
	}
	return mustCSR(coo)
}

// Arrow generates an arrowhead matrix: dense first `width` rows and
// columns plus a diagonal — extreme row-length skew with a hot
// corner, stressing load balance and caching of the shared rows.
func Arrow(n, width int, seed uint64) *CSR {
	rng := newRNG(seed)
	if width >= n {
		width = n / 2
	}
	coo := &COO{Rows: n, Cols: n}
	for i := 0; i < n; i++ {
		coo.Add(i, i, diagVal(rng))
		if i >= width {
			for j := 0; j < width; j++ {
				coo.Add(i, j, offVal(rng))
				coo.Add(j, i, offVal(rng))
			}
		}
	}
	return mustCSR(coo)
}

// diagVal returns a diagonally-dominant positive value so lower
// triangles extracted from generated matrices are well conditioned.
func diagVal(rng *rand.Rand) float64 { return 16 + rng.Float64() }

func offVal(rng *rand.Rand) float64 { return rng.Float64() - 0.5 }

func mustCSR(coo *COO) *CSR {
	m, err := coo.ToCSR()
	if err != nil {
		panic(err) // generators construct in-bounds entries by design
	}
	return m
}

// Metrics summarizes the structural features the paper's heat maps
// (Figs 9–11 bottom, 20–22) bin matrices by.
type Metrics struct {
	Rows           int
	NNZ            int
	AvgRowNNZ      float64
	MaxRowNNZ      int
	Bandwidth      int     // max |i - j| over entries
	DiagDominance  float64 // fraction of rows with |diag| > sum|offdiag|
	FootprintBytes int64
}

// Measure computes structure metrics for a matrix.
func Measure(m *CSR) Metrics {
	mt := Metrics{Rows: m.Rows, NNZ: m.NNZ(), FootprintBytes: m.FootprintBytes()}
	if m.Rows > 0 {
		mt.AvgRowNNZ = float64(m.NNZ()) / float64(m.Rows)
	}
	dom := 0
	for i := 0; i < m.Rows; i++ {
		if n := m.RowNNZ(i); n > mt.MaxRowNNZ {
			mt.MaxRowNNZ = n
		}
		var diag, off float64
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			j := int(m.ColIdx[p])
			if d := j - i; d > mt.Bandwidth {
				mt.Bandwidth = d
			} else if -d > mt.Bandwidth {
				mt.Bandwidth = -d
			}
			if j == i {
				diag = math.Abs(m.Val[p])
			} else {
				off += math.Abs(m.Val[p])
			}
		}
		if diag > off {
			dom++
		}
	}
	if m.Rows > 0 {
		mt.DiagDominance = float64(dom) / float64(m.Rows)
	}
	return mt
}
