package sparse

import (
	"fmt"
	"math"
)

// CollectionSize is the number of matrices in the synthetic suite,
// matching the paper's 968 square UF matrices with nnz > 200,000.
const CollectionSize = 968

// Spec describes one matrix of the synthetic collection at paper
// scale. Instantiate builds the (capacity-scaled) CSR matrix.
type Spec struct {
	ID             int
	Name           string
	Family         Family
	PaperFootprint int64 // CSR+vector footprint target, bytes, paper scale
	RowNNZ         int   // target average row length
	Seed           uint64
}

// collection footprint envelope: the paper's figures span memory
// footprints from a few MB to ~8 GB (Figs 9–11 and 17–19 axes).
const (
	minPaperFootprint = int64(4) << 20
	maxPaperFootprint = int64(8) << 30
)

// Collection returns the full 968-matrix synthetic suite. Specs are
// deterministic: the same ID always produces the same matrix. Families
// round-robin and footprints follow a low-discrepancy log-uniform
// spread over the envelope, so every (family, size) region of the
// paper's scatter plots is populated.
func Collection() []Spec {
	specs := make([]Spec, CollectionSize)
	logMin := math.Log(float64(minPaperFootprint))
	logMax := math.Log(float64(maxPaperFootprint))
	const phi = 0.6180339887498949 // golden-ratio low-discrepancy step
	rowNNZChoices := []int{4, 6, 8, 12, 16, 24, 32, 48}
	for i := range specs {
		u := math.Mod(float64(i)*phi, 1)
		fp := int64(math.Exp(logMin + u*(logMax-logMin)))
		fam := Family(i % int(NumFamilies))
		specs[i] = Spec{
			ID:             i,
			Family:         fam,
			PaperFootprint: fp,
			RowNNZ:         rowNNZChoices[(i/int(NumFamilies))%len(rowNNZChoices)],
			Seed:           uint64(i)*0x9e3779b97f4a7c15 + 1,
		}
		specs[i].Name = fmt.Sprintf("%s-%04d", fam, i)
	}
	return specs
}

// Subsample returns every stride-th spec — the default quick suite for
// benchmarks (the full 968-matrix sweep is behind the CLI -full flag).
func Subsample(specs []Spec, stride int) []Spec {
	if stride <= 1 {
		return specs
	}
	out := make([]Spec, 0, (len(specs)+stride-1)/stride)
	for i := 0; i < len(specs); i += stride {
		out = append(out, specs[i])
	}
	return out
}

// FilterMaxFootprint drops specs whose paper-scale footprint exceeds
// the limit (Broadwell sweeps stop near 1 GB in the paper's figures).
func FilterMaxFootprint(specs []Spec, limit int64) []Spec {
	out := make([]Spec, 0, len(specs))
	for _, sp := range specs {
		if sp.PaperFootprint <= limit {
			out = append(out, sp)
		}
	}
	return out
}

// Instantiate builds the matrix at 1/scale of its paper footprint.
// The returned matrix is square with sorted, deduplicated rows.
func (sp Spec) Instantiate(scale int64) *CSR {
	if scale < 1 {
		scale = 1
	}
	target := sp.PaperFootprint / scale
	if target < 16<<10 {
		target = 16 << 10
	}
	r := sp.RowNNZ
	if r < 3 {
		r = 3
	}
	// Footprint model: 12 bytes/entry + 20 bytes/row (ptr + vectors).
	n := int(target / int64(12*r+20))
	if n < 64 {
		n = 64
	}
	switch sp.Family {
	case FamBanded:
		return Banded(n, 4*r, r, sp.Seed)
	case FamRandomUniform:
		return RandomUniform(n, r, sp.Seed)
	case FamRMAT:
		return RMAT(n, n*(r-1), sp.Seed)
	case FamBlockDiag:
		block := r
		if block < 2 {
			block = 2
		}
		// Dense blocks of size b give b entries/row; resize n for the
		// same footprint.
		return BlockDiag(n, block, sp.Seed)
	case FamPoisson2D:
		k := int(math.Sqrt(float64(target) / (12*5 + 20)))
		if k < 8 {
			k = 8
		}
		return Poisson2D(k)
	case FamPoisson3D:
		k := int(math.Cbrt(float64(target) / (12*7 + 20)))
		if k < 4 {
			k = 4
		}
		return Poisson3D(k)
	case FamTridiag:
		nt := int(target / 56)
		if nt < 64 {
			nt = 64
		}
		return Tridiag(nt)
	case FamArrow:
		width := r / 2
		if width < 2 {
			width = 2
		}
		// Arrow rows hold ~2*width entries beyond the diagonal.
		na := int(target / int64(12*(2*width+1)+20))
		if na < 64 {
			na = 64
		}
		return Arrow(na, width, sp.Seed)
	}
	panic(fmt.Sprintf("sparse: unknown family %d", int(sp.Family)))
}
