package sparse

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestToCSR5RoundTrip(t *testing.T) {
	for _, m := range []*CSR{
		Tridiag(100),
		RandomUniform(257, 7, 3), // non-multiple of tile size
		RMAT(128, 900, 5),
		Poisson2D(17),
	} {
		c5, err := ToCSR5(m, DefaultOmega, DefaultSigma)
		if err != nil {
			t.Fatal(err)
		}
		if err := c5.Validate(); err != nil {
			t.Fatal(err)
		}
		if c5.NNZ() != m.NNZ() {
			t.Fatalf("nnz %d vs %d", c5.NNZ(), m.NNZ())
		}
		back := c5.ToCSR()
		if !equalCSR(m, back) {
			t.Fatal("CSR5 round trip changed the matrix")
		}
	}
}

func TestToCSR5Geometry(t *testing.T) {
	m := Tridiag(50) // 148 nnz
	c5, err := ToCSR5(m, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	if c5.TileSize() != 64 {
		t.Fatal("tile size")
	}
	if c5.Tiles() != 3 { // ceil(148/64)
		t.Fatalf("tiles = %d, want 3", c5.Tiles())
	}
	if len(c5.Val) != 192 {
		t.Fatalf("padded storage = %d, want 192", len(c5.Val))
	}
	// First tile starts at row 0.
	if c5.TileRowStart[0] != 0 {
		t.Fatal("tile 0 row start")
	}
	if !c5.TileDirty[0] {
		t.Fatal("tile 0 must contain row breaks (rows shorter than tile)")
	}
}

func TestToCSR5Errors(t *testing.T) {
	m := Tridiag(10)
	if _, err := ToCSR5(m, 0, 16); err == nil {
		t.Fatal("zero omega accepted")
	}
	bad := m.Clone()
	bad.ColIdx[0] = 99
	if _, err := ToCSR5(bad, 4, 16); err == nil {
		t.Fatal("invalid CSR accepted")
	}
}

func TestCSR5ValidateCatchesCorruption(t *testing.T) {
	c5, _ := ToCSR5(Tridiag(64), 4, 16)
	bad := *c5
	bad.ColIdx = append([]int32(nil), c5.ColIdx...)
	bad.ColIdx[0] = 1000
	if bad.Validate() == nil {
		t.Fatal("out-of-range column accepted")
	}
	bad2 := *c5
	bad2.TileDirty = bad2.TileDirty[:len(bad2.TileDirty)-1]
	if bad2.Validate() == nil {
		t.Fatal("descriptor mismatch accepted")
	}
}

// Property: CSR5 round trips for arbitrary structures and geometries.
func TestPropertyCSR5RoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 5))
		n := 32 + rng.IntN(256)
		m := RandomUniform(n, 1+rng.IntN(9), seed)
		omega := 1 + rng.IntN(8)
		sigma := 1 + rng.IntN(32)
		c5, err := ToCSR5(m, omega, sigma)
		if err != nil {
			return false
		}
		if c5.Validate() != nil {
			return false
		}
		return equalCSR(m, c5.ToCSR())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
