package sparse

import (
	"math"
	"strings"
	"testing"
)

// TestCheckDims rejects zero and negative dimensions with the
// parameter's name in the error.
func TestCheckDims(t *testing.T) {
	if err := CheckDims("rows", 1); err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, -1, -4096} {
		err := CheckDims("rows", n)
		if err == nil {
			t.Fatalf("dimension %d accepted", n)
		}
		if !strings.Contains(err.Error(), "rows") {
			t.Fatalf("error %q does not name the parameter", err)
		}
	}
}

// TestCheckDensity rejects NaN and out-of-range densities.
func TestCheckDensity(t *testing.T) {
	for _, d := range []float64{0.001, 0.5, 1} {
		if err := CheckDensity(d); err != nil {
			t.Fatalf("density %g rejected: %v", d, err)
		}
	}
	for _, d := range []float64{math.NaN(), 0, -0.1, 1.0001, math.Inf(1)} {
		if err := CheckDensity(d); err == nil {
			t.Fatalf("density %g accepted", d)
		}
	}
}

// TestSpecValidate checks the spec gate: the collection passes, and
// each hand-built malformation is caught with the spec's name.
func TestSpecValidate(t *testing.T) {
	for _, sp := range Collection() {
		if err := sp.Validate(); err != nil {
			t.Fatalf("collection spec %s invalid: %v", sp.Name, err)
		}
	}
	good := Collection()[0]
	for _, c := range []struct {
		name   string
		mutate func(*Spec)
	}{
		{"bad family", func(sp *Spec) { sp.Family = NumFamilies }},
		{"negative family", func(sp *Spec) { sp.Family = -1 }},
		{"zero footprint", func(sp *Spec) { sp.PaperFootprint = 0 }},
		{"zero rownnz", func(sp *Spec) { sp.RowNNZ = 0 }},
	} {
		sp := good
		c.mutate(&sp)
		err := sp.Validate()
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), good.Name) {
			t.Errorf("%s: error %q does not name the spec", c.name, err)
		}
	}
}

// TestCheckedGatesInstantiate checks Checked rejects bad scales and
// bad specs but still instantiates healthy ones.
func TestCheckedGatesInstantiate(t *testing.T) {
	sp := Collection()[0]
	if _, err := sp.Checked(0); err == nil {
		t.Fatal("scale 0 accepted")
	}
	if _, err := sp.Checked(-16); err == nil {
		t.Fatal("negative scale accepted")
	}
	bad := sp
	bad.RowNNZ = 0
	if _, err := bad.Checked(64); err == nil {
		t.Fatal("malformed spec instantiated")
	}
	m, err := sp.Checked(64)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows <= 0 || m.NNZ() <= 0 {
		t.Fatalf("instantiated matrix degenerate: %d rows %d nnz", m.Rows, m.NNZ())
	}
}

// TestRandomDensity checks the matgen -gen entry point validates both
// inputs and otherwise produces the requested structure.
func TestRandomDensity(t *testing.T) {
	if _, err := RandomDensity(0, 0.5, 1); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := RandomDensity(64, math.NaN(), 1); err == nil {
		t.Fatal("NaN density accepted")
	}
	if _, err := RandomDensity(64, 0, 1); err == nil {
		t.Fatal("zero density accepted")
	}
	m, err := RandomDensity(128, 0.05, 7)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 128 {
		t.Fatalf("rows = %d", m.Rows)
	}
	// 0.05 × 128 ≈ 6 nonzeros per row (plus the diagonal's guarantee).
	avg := float64(m.NNZ()) / 128
	if avg < 3 || avg > 12 {
		t.Fatalf("avg row nnz %.1f, want ≈6", avg)
	}
	// Tiny density still yields at least the guaranteed 1 nnz/row.
	m2, err := RandomDensity(32, 1e-6, 7)
	if err != nil {
		t.Fatal(err)
	}
	if m2.NNZ() < 32 {
		t.Fatalf("nnz %d below the 1-per-row floor", m2.NNZ())
	}
}
