package sparse

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Matrix Market I/O: the interchange format of the UF Sparse Matrix
// Collection the paper's kernels consume (matrix.mtx arguments in
// Appendix A). Supported: "matrix coordinate (real|integer|pattern)
// (general|symmetric)".

// WriteMatrixMarket writes m in coordinate real general format.
func WriteMatrixMarket(w io.Writer, m *CSR) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real general\n"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", m.Rows, m.Cols, m.NNZ()); err != nil {
		return err
	}
	for i := 0; i < m.Rows; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", i+1, m.ColIdx[p]+1, m.Val[p]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadMatrixMarket parses a coordinate-format Matrix Market stream
// into CSR, expanding symmetric storage and summing duplicates.
func ReadMatrixMarket(r io.Reader) (*CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("sparse: empty MatrixMarket stream")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 4 || header[0] != "%%matrixmarket" || header[1] != "matrix" {
		return nil, fmt.Errorf("sparse: bad MatrixMarket header %q", sc.Text())
	}
	if header[2] != "coordinate" {
		return nil, fmt.Errorf("sparse: only coordinate format supported, got %q", header[2])
	}
	field := header[3]
	pattern := field == "pattern"
	if field != "real" && field != "integer" && !pattern {
		return nil, fmt.Errorf("sparse: unsupported field %q", field)
	}
	symmetric := false
	if len(header) >= 5 {
		switch header[4] {
		case "general":
		case "symmetric":
			symmetric = true
		default:
			return nil, fmt.Errorf("sparse: unsupported symmetry %q", header[4])
		}
	}

	// Skip comments; read size line.
	var rows, cols, nnz int
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscan(line, &rows, &cols, &nnz); err != nil {
			return nil, fmt.Errorf("sparse: bad size line %q: %w", line, err)
		}
		break
	}
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("sparse: bad dimensions %dx%d", rows, cols)
	}
	coo := &COO{Rows: rows, Cols: cols}
	read := 0
	for read < nnz && sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 2 || (!pattern && len(f) < 3) {
			return nil, fmt.Errorf("sparse: bad entry line %q", line)
		}
		i, err := strconv.Atoi(f[0])
		if err != nil {
			return nil, fmt.Errorf("sparse: bad row in %q: %w", line, err)
		}
		j, err := strconv.Atoi(f[1])
		if err != nil {
			return nil, fmt.Errorf("sparse: bad col in %q: %w", line, err)
		}
		v := 1.0
		if !pattern {
			v, err = strconv.ParseFloat(f[2], 64)
			if err != nil {
				return nil, fmt.Errorf("sparse: bad value in %q: %w", line, err)
			}
		}
		if i < 1 || i > rows || j < 1 || j > cols {
			return nil, fmt.Errorf("sparse: entry (%d,%d) out of bounds %dx%d", i, j, rows, cols)
		}
		coo.Add(i-1, j-1, v)
		if symmetric && i != j {
			coo.Add(j-1, i-1, v)
		}
		read++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("sparse: read error: %w", err)
	}
	if read != nnz {
		return nil, fmt.Errorf("sparse: expected %d entries, got %d", nnz, read)
	}
	return coo.ToCSR()
}
