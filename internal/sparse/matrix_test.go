package sparse

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestCOOToCSRBasic(t *testing.T) {
	coo := &COO{Rows: 3, Cols: 3}
	coo.Add(0, 1, 2)
	coo.Add(2, 0, 5)
	coo.Add(0, 0, 1)
	coo.Add(1, 2, 3)
	m, err := coo.ToCSR()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 4 {
		t.Fatalf("nnz = %d, want 4", m.NNZ())
	}
	if got := m.At(0, 0); got != 1 {
		t.Errorf("At(0,0) = %v", got)
	}
	if got := m.At(0, 1); got != 2 {
		t.Errorf("At(0,1) = %v", got)
	}
	if got := m.At(1, 2); got != 3 {
		t.Errorf("At(1,2) = %v", got)
	}
	if got := m.At(2, 0); got != 5 {
		t.Errorf("At(2,0) = %v", got)
	}
	if got := m.At(2, 2); got != 0 {
		t.Errorf("At(2,2) = %v, want 0 (absent)", got)
	}
}

func TestCOOToCSRSumsDuplicates(t *testing.T) {
	coo := &COO{Rows: 2, Cols: 2}
	coo.Add(0, 0, 1)
	coo.Add(0, 0, 2.5)
	coo.Add(1, 1, 1)
	m, err := coo.ToCSR()
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 2 {
		t.Fatalf("nnz = %d, want 2 after dedup", m.NNZ())
	}
	if got := m.At(0, 0); got != 3.5 {
		t.Fatalf("At(0,0) = %v, want 3.5", got)
	}
}

func TestCOOValidateRejectsBadEntries(t *testing.T) {
	coo := &COO{Rows: 2, Cols: 2}
	coo.Add(0, 5, 1)
	if _, err := coo.ToCSR(); err == nil {
		t.Fatal("out-of-range column accepted")
	}
	coo2 := &COO{Rows: 2, Cols: 2, RowIdx: []int32{0}, ColIdx: []int32{0, 1}, Val: []float64{1, 2}}
	if coo2.Validate() == nil {
		t.Fatal("ragged arrays accepted")
	}
	coo3 := &COO{Rows: -1, Cols: 2}
	if coo3.Validate() == nil {
		t.Fatal("negative dims accepted")
	}
}

func TestCSRValidateCatchesCorruption(t *testing.T) {
	m := Tridiag(8)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := m.Clone()
	bad.RowPtr[3] = bad.RowPtr[4] + 1
	if bad.Validate() == nil {
		t.Error("non-monotone rowptr accepted")
	}
	bad = m.Clone()
	bad.ColIdx[0] = 100
	if bad.Validate() == nil {
		t.Error("out-of-range column accepted")
	}
	bad = m.Clone()
	bad.RowPtr[0] = 1
	if bad.Validate() == nil {
		t.Error("nonzero rowptr[0] accepted")
	}
}

func TestCSRFootprintFormula(t *testing.T) {
	m := Tridiag(100)
	// Table 2 accounting: 12*nnz + 4*(rows+1) + 16*rows.
	want := int64(m.NNZ())*12 + 101*4 + 100*16
	if got := m.FootprintBytes(); got != want {
		t.Fatalf("footprint = %d, want %d", got, want)
	}
}

func TestTransposeSmall(t *testing.T) {
	coo := &COO{Rows: 2, Cols: 3}
	coo.Add(0, 0, 1)
	coo.Add(0, 2, 2)
	coo.Add(1, 1, 3)
	m, _ := coo.ToCSR()
	tr := Transpose(m)
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("transpose dims %dx%d", tr.Rows, tr.Cols)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.At(0, 0) != 1 || tr.At(2, 0) != 2 || tr.At(1, 1) != 3 {
		t.Fatal("transpose entries wrong")
	}
}

func TestTransposeInvolution(t *testing.T) {
	m := RandomUniform(200, 8, 42)
	tt := Transpose(Transpose(m))
	if !equalCSR(m, tt) {
		t.Fatal("transpose twice should be identity")
	}
}

func TestTransposeToCSCRoundTrip(t *testing.T) {
	m := RMAT(128, 1024, 7)
	csc := TransposeToCSC(m)
	if err := csc.Validate(); err != nil {
		t.Fatal(err)
	}
	back := csc.ToCSR()
	if !equalCSR(m, back) {
		t.Fatal("CSR->CSC->CSR round trip changed the matrix")
	}
}

func TestLowerTriangle(t *testing.T) {
	m := RandomUniform(64, 6, 3)
	l, err := m.LowerTriangle()
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < l.Rows; i++ {
		hasDiag := false
		for p := l.RowPtr[i]; p < l.RowPtr[i+1]; p++ {
			if int(l.ColIdx[p]) > i {
				t.Fatalf("upper entry (%d,%d) in lower triangle", i, l.ColIdx[p])
			}
			if int(l.ColIdx[p]) == i {
				hasDiag = true
				if l.Val[p] == 0 {
					t.Fatalf("zero diagonal at row %d", i)
				}
			}
		}
		if !hasDiag {
			t.Fatalf("missing diagonal at row %d", i)
		}
	}
}

func TestLowerTriangleRejectsNonSquare(t *testing.T) {
	coo := &COO{Rows: 2, Cols: 3}
	coo.Add(0, 0, 1)
	m, _ := coo.ToCSR()
	if _, err := m.LowerTriangle(); err == nil {
		t.Fatal("non-square accepted")
	}
}

func TestSegmentedSort(t *testing.T) {
	ptr := []int64{0, 3, 3, 7}
	keys := []int32{5, 1, 3, 9, 2, 8, 0}
	vals := []float64{50, 10, 30, 90, 20, 80, 0}
	SegmentedSort(ptr, keys, vals)
	wantK := []int32{1, 3, 5, 0, 2, 8, 9}
	wantV := []float64{10, 30, 50, 0, 20, 80, 90}
	for i := range keys {
		if keys[i] != wantK[i] || vals[i] != wantV[i] {
			t.Fatalf("segment sort wrong at %d: got (%d,%v) want (%d,%v)",
				i, keys[i], vals[i], wantK[i], wantV[i])
		}
	}
}

func TestSegmentedSortLongSegment(t *testing.T) {
	n := 1000
	ptr := []int64{0, int64(n)}
	keys := make([]int32, n)
	vals := make([]float64, n)
	rng := rand.New(rand.NewPCG(1, 2))
	for i := range keys {
		keys[i] = int32(rng.IntN(1 << 20))
		vals[i] = float64(keys[i]) * 2
	}
	SegmentedSort(ptr, keys, vals)
	for i := 1; i < n; i++ {
		if keys[i] < keys[i-1] {
			t.Fatal("long segment not sorted")
		}
		if vals[i] != float64(keys[i])*2 {
			t.Fatal("values not permuted with keys")
		}
	}
}

func TestBuildLevelsTridiag(t *testing.T) {
	// Lower triangle of tridiag is bidiagonal: a pure chain, so every
	// row is its own level.
	l, err := Tridiag(16).LowerTriangle()
	if err != nil {
		t.Fatal(err)
	}
	s, err := BuildLevels(l)
	if err != nil {
		t.Fatal(err)
	}
	if s.Levels() != 16 {
		t.Fatalf("levels = %d, want 16 (chain)", s.Levels())
	}
	if s.AvgParallelism() != 1 {
		t.Fatalf("avg parallelism = %v, want 1", s.AvgParallelism())
	}
}

func TestBuildLevelsDiagonal(t *testing.T) {
	// A diagonal matrix has a single level with full parallelism.
	coo := &COO{Rows: 8, Cols: 8}
	for i := 0; i < 8; i++ {
		coo.Add(i, i, 1)
	}
	m, _ := coo.ToCSR()
	s, err := BuildLevels(m)
	if err != nil {
		t.Fatal(err)
	}
	if s.Levels() != 1 || s.MaxWidth() != 8 {
		t.Fatalf("levels=%d width=%d, want 1, 8", s.Levels(), s.MaxWidth())
	}
}

func TestBuildLevelsRespectsDependencies(t *testing.T) {
	l, err := Poisson2D(12).LowerTriangle()
	if err != nil {
		t.Fatal(err)
	}
	s, err := BuildLevels(l)
	if err != nil {
		t.Fatal(err)
	}
	// Every dependency (i, j), j<i must have level(j) < level(i).
	level := make([]int, l.Rows)
	for lv := 0; lv < s.Levels(); lv++ {
		for p := s.Ptr[lv]; p < s.Ptr[lv+1]; p++ {
			level[s.Order[p]] = lv
		}
	}
	for i := 0; i < l.Rows; i++ {
		for p := l.RowPtr[i]; p < l.RowPtr[i+1]; p++ {
			if j := int(l.ColIdx[p]); j < i && level[j] >= level[i] {
				t.Fatalf("dependency violated: level(%d)=%d >= level(%d)=%d",
					j, level[j], i, level[i])
			}
		}
	}
	if s.Rows() != l.Rows {
		t.Fatalf("scheduled %d rows, want %d", s.Rows(), l.Rows)
	}
}

func TestBuildLevelsRejectsUpperEntries(t *testing.T) {
	m := Tridiag(4) // has upper entries
	if _, err := BuildLevels(m); err == nil {
		t.Fatal("upper entries accepted")
	}
}

func equalCSR(a, b *CSR) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols || a.NNZ() != b.NNZ() {
		return false
	}
	for i := range a.RowPtr {
		if a.RowPtr[i] != b.RowPtr[i] {
			return false
		}
	}
	for k := range a.Val {
		if a.ColIdx[k] != b.ColIdx[k] || math.Abs(a.Val[k]-b.Val[k]) > 1e-12 {
			return false
		}
	}
	return true
}

// Property: transpose preserves every entry (checked via At on random
// coordinates) and the total NNZ.
func TestPropertyTransposePreservesEntries(t *testing.T) {
	f := func(seed uint64) bool {
		n := 50 + int(seed%100)
		m := RandomUniform(n, 5, seed)
		tr := Transpose(m)
		if tr.NNZ() != m.NNZ() {
			return false
		}
		rng := rand.New(rand.NewPCG(seed, 3))
		for k := 0; k < 50; k++ {
			i, j := rng.IntN(n), rng.IntN(n)
			if m.At(i, j) != tr.At(j, i) {
				return false
			}
		}
		return tr.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: level schedules are complete permutations of the rows.
func TestPropertyLevelScheduleIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		n := 64 + int(seed%64)
		l, err := RandomUniform(n, 4, seed).LowerTriangle()
		if err != nil {
			return false
		}
		s, err := BuildLevels(l)
		if err != nil {
			return false
		}
		seen := make([]bool, n)
		for _, r := range s.Order {
			if seen[r] {
				return false
			}
			seen[r] = true
		}
		for _, ok := range seen {
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTranspose(b *testing.B) {
	m := RMAT(1<<14, 1<<17, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Transpose(m)
	}
}

func BenchmarkBuildLevels(b *testing.B) {
	l, err := Poisson2D(256).LowerTriangle()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildLevels(l); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCollectionInstantiate(b *testing.B) {
	sp := Collection()[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.Instantiate(256)
	}
}
