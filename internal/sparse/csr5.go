package sparse

import "fmt"

// CSR5 is a simplified but faithful implementation of the CSR5 storage
// format (Liu & Vinter, ICS'15) — the SpMV implementation the paper
// benchmarks. Nonzeros are partitioned into fixed-size 2D tiles of
// Sigma×Omega entries stored tile-column-major (the SIMD-friendly
// transposed layout), with per-tile descriptors:
//
//   - TileRowStart: the row of the tile's first nonzero;
//   - RowBreak bit flags marking entries that begin a new row, which
//     drive the segmented-sum SpMV without atomics;
//   - Dirty flag for tiles containing at least one row break.
//
// Rows may span tile boundaries; CSR5SpMV resolves the carries. Empty
// rows are handled by consulting the original RowPtr.
type CSR5 struct {
	Rows, Cols int
	// Tile geometry: Omega SIMD lanes × Sigma entries per lane.
	Omega, Sigma int

	RowPtr []int64 // original CSR row pointers (for empty rows)
	// Val and ColIdx hold nnz entries padded to a tile multiple,
	// transposed within each tile: entry (lane, slot) of tile t lives
	// at t*Omega*Sigma + slot*Omega + lane. Padding entries carry
	// value 0 and repeat the last column index.
	Val    []float64
	ColIdx []int32
	// RowBreak[k] is true when padded entry k starts a new row.
	RowBreak []bool
	// TileRowStart[t] is the row containing tile t's first entry.
	TileRowStart []int32
	// TileDirty[t] is true when the tile contains a row break.
	TileDirty []bool

	nnz int // unpadded entry count
}

// DefaultOmega and DefaultSigma follow the CSR5 paper's CPU defaults
// (4 SIMD lanes of 16 entries).
const (
	DefaultOmega = 4
	DefaultSigma = 16
)

// NNZ returns the unpadded nonzero count.
func (m *CSR5) NNZ() int { return m.nnz }

// Tiles returns the tile count.
func (m *CSR5) Tiles() int { return len(m.TileRowStart) }

// TileSize returns entries per tile.
func (m *CSR5) TileSize() int { return m.Omega * m.Sigma }

// ToCSR5 converts a CSR matrix into CSR5 layout.
func ToCSR5(a *CSR, omega, sigma int) (*CSR5, error) {
	if omega < 1 || sigma < 1 {
		return nil, fmt.Errorf("sparse: CSR5 tile geometry %dx%d invalid", omega, sigma)
	}
	if err := a.Validate(); err != nil {
		return nil, fmt.Errorf("sparse: ToCSR5: %w", err)
	}
	nnz := a.NNZ()
	tileSz := omega * sigma
	tiles := (nnz + tileSz - 1) / tileSz
	if tiles == 0 {
		tiles = 0
	}
	padded := tiles * tileSz
	m := &CSR5{
		Rows: a.Rows, Cols: a.Cols,
		Omega: omega, Sigma: sigma,
		RowPtr:       append([]int64(nil), a.RowPtr...),
		Val:          make([]float64, padded),
		ColIdx:       make([]int32, padded),
		RowBreak:     make([]bool, padded),
		TileRowStart: make([]int32, tiles),
		TileDirty:    make([]bool, tiles),
		nnz:          nnz,
	}

	// rowOf[k] for each original entry, and break flags in CSR order.
	rowOf := make([]int32, nnz)
	breaks := make([]bool, nnz)
	for i := 0; i < a.Rows; i++ {
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			rowOf[p] = int32(i)
			breaks[p] = p == a.RowPtr[i]
		}
	}

	for t := 0; t < tiles; t++ {
		base := t * tileSz
		if base < nnz {
			m.TileRowStart[t] = rowOf[base]
		} else if nnz > 0 {
			m.TileRowStart[t] = rowOf[nnz-1]
		}
		for slot := 0; slot < sigma; slot++ {
			for lane := 0; lane < omega; lane++ {
				// Transposed layout: lanes advance fastest in storage,
				// but logical CSR order advances lane-major through
				// the tile (lane column holds sigma consecutive
				// entries).
				logical := base + lane*sigma + slot
				phys := base + slot*omega + lane
				if logical < nnz {
					m.Val[phys] = a.Val[logical]
					m.ColIdx[phys] = a.ColIdx[logical]
					m.RowBreak[phys] = breaks[logical]
					if breaks[logical] {
						m.TileDirty[t] = true
					}
				} else if logical > 0 {
					// Padding: zero value, repeat last column.
					m.Val[phys] = 0
					m.ColIdx[phys] = a.ColIdx[nnz-1]
				}
			}
		}
	}
	return m, nil
}

// logicalEntry returns the k-th entry (CSR order) of the padded
// stream: its physical index in the transposed layout.
func (m *CSR5) logicalToPhysical(k int) int {
	tileSz := m.Omega * m.Sigma
	t := k / tileSz
	off := k % tileSz
	lane := off / m.Sigma
	slot := off % m.Sigma
	return t*tileSz + slot*m.Omega + lane
}

// Validate checks structural invariants of the CSR5 layout.
func (m *CSR5) Validate() error {
	tileSz := m.Omega * m.Sigma
	if tileSz <= 0 {
		return fmt.Errorf("sparse: CSR5 bad tile geometry")
	}
	if len(m.Val) != len(m.ColIdx) || len(m.Val) != len(m.RowBreak) {
		return fmt.Errorf("sparse: CSR5 ragged arrays")
	}
	if len(m.Val)%tileSz != 0 {
		return fmt.Errorf("sparse: CSR5 padding not tile aligned")
	}
	if len(m.Val)/tileSz != len(m.TileRowStart) || len(m.TileRowStart) != len(m.TileDirty) {
		return fmt.Errorf("sparse: CSR5 descriptor count mismatch")
	}
	if m.nnz > len(m.Val) {
		return fmt.Errorf("sparse: CSR5 nnz exceeds storage")
	}
	for k := 0; k < m.nnz; k++ {
		c := m.ColIdx[m.logicalToPhysical(k)]
		if c < 0 || int(c) >= m.Cols {
			return fmt.Errorf("sparse: CSR5 column %d out of range at %d", c, k)
		}
	}
	return nil
}

// ToCSR reconstructs the CSR matrix (for round-trip validation).
func (m *CSR5) ToCSR() *CSR {
	out := &CSR{
		Rows:   m.Rows,
		Cols:   m.Cols,
		RowPtr: append([]int64(nil), m.RowPtr...),
		ColIdx: make([]int32, m.nnz),
		Val:    make([]float64, m.nnz),
	}
	for k := 0; k < m.nnz; k++ {
		phys := m.logicalToPhysical(k)
		out.ColIdx[k] = m.ColIdx[phys]
		out.Val[k] = m.Val[phys]
	}
	return out
}
