package sparse

import "sort"

// SegmentedSort sorts keys (and reorders vals identically) within each
// segment delimited by ptr, the preprocessing the paper applies to all
// 968 matrices ("rows ... ordered by using the segmented sort"). Short
// segments — the common case in sparse rows — use insertion sort;
// longer segments fall back to sort.Sort on a paired view.
func SegmentedSort(ptr []int64, keys []int32, vals []float64) {
	const insertionCutoff = 32
	for s := 0; s+1 < len(ptr); s++ {
		lo, hi := ptr[s], ptr[s+1]
		n := hi - lo
		if n < 2 {
			continue
		}
		k := keys[lo:hi]
		v := vals[lo:hi]
		if n <= insertionCutoff {
			insertionSortPair(k, v)
			continue
		}
		sort.Sort(&pairView{k, v})
	}
}

func insertionSortPair(k []int32, v []float64) {
	for i := 1; i < len(k); i++ {
		ki, vi := k[i], v[i]
		j := i - 1
		for j >= 0 && k[j] > ki {
			k[j+1], v[j+1] = k[j], v[j]
			j--
		}
		k[j+1], v[j+1] = ki, vi
	}
}

type pairView struct {
	k []int32
	v []float64
}

func (p *pairView) Len() int           { return len(p.k) }
func (p *pairView) Less(i, j int) bool { return p.k[i] < p.k[j] }
func (p *pairView) Swap(i, j int) {
	p.k[i], p.k[j] = p.k[j], p.k[i]
	p.v[i], p.v[j] = p.v[j], p.v[i]
}
