package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLineAddr(t *testing.T) {
	cases := []struct {
		byteAddr uint64
		want     uint64
	}{
		{0, 0},
		{63, 0},
		{64, 1},
		{65, 1},
		{128, 2},
		{1 << 20, 1 << 14},
	}
	for _, c := range cases {
		if got := LineAddr(c.byteAddr); got != c.want {
			t.Errorf("LineAddr(%d) = %d, want %d", c.byteAddr, got, c.want)
		}
	}
}

func TestStatsRates(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 || s.HitRate() != 0 {
		t.Fatal("empty stats should have zero rates")
	}
	s = Stats{Accesses: 10, Hits: 7, Misses: 3}
	if got := s.MissRate(); got != 0.3 {
		t.Errorf("MissRate = %v, want 0.3", got)
	}
	if got := s.HitRate(); got != 0.7 {
		t.Errorf("HitRate = %v, want 0.7", got)
	}
}

func TestSetAssocBasicHitMiss(t *testing.T) {
	c := NewSetAssoc("l2", 8*LineSize, 2) // 4 sets, 2 ways
	hit, _ := c.Access(0, false)
	if hit {
		t.Fatal("cold access should miss")
	}
	hit, _ = c.Access(0, false)
	if !hit {
		t.Fatal("second access should hit")
	}
	st := c.Stats()
	if st.Accesses != 2 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", *st)
	}
}

func TestSetAssocLRUOrder(t *testing.T) {
	// 1 set, 2 ways: lines mapping to set 0 are multiples of 1.
	c := NewSetAssoc("t", 2*LineSize, 2)
	c.Access(10, false)
	c.Access(20, false)
	// Touch 10 so 20 becomes LRU.
	if hit, _ := c.Access(10, false); !hit {
		t.Fatal("10 should hit")
	}
	// Insert 30: must evict 20 (LRU), not 10.
	_, ev := c.Access(30, false)
	if !ev.Valid || ev.Addr != 20 {
		t.Fatalf("evicted %+v, want addr 20", ev)
	}
	if !c.Probe(10) || c.Probe(20) || !c.Probe(30) {
		t.Fatal("LRU replacement produced wrong contents")
	}
}

func TestSetAssocDirtyWriteback(t *testing.T) {
	c := NewSetAssoc("t", 2*LineSize, 2) // 1 set 2 ways
	c.Access(1, true)                    // dirty
	c.Access(2, false)
	c.Access(3, false) // evicts 1, dirty
	st := c.Stats()
	if st.Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", st.Writebacks)
	}
	// Evicting clean line 2 must not add writebacks.
	c.Access(4, false)
	if c.Stats().Writebacks != 1 {
		t.Fatalf("writebacks = %d, want still 1", c.Stats().Writebacks)
	}
}

func TestSetAssocWriteHitMarksDirty(t *testing.T) {
	c := NewSetAssoc("t", 2*LineSize, 2)
	c.Access(1, false) // clean fill
	c.Access(1, true)  // write hit: now dirty
	c.Access(2, false)
	_, ev := c.Access(3, false) // evicts 1
	if !ev.Valid || ev.Addr != 1 || !ev.Dirty {
		t.Fatalf("evicted %+v, want dirty line 1", ev)
	}
}

func TestSetAssocInvalidate(t *testing.T) {
	c := NewSetAssoc("t", 4*LineSize, 2)
	c.Access(5, true)
	found, dirty := c.Invalidate(5)
	if !found || !dirty {
		t.Fatalf("Invalidate(5) = %v,%v want true,true", found, dirty)
	}
	if c.Probe(5) {
		t.Fatal("line should be gone after invalidate")
	}
	found, _ = c.Invalidate(5)
	if found {
		t.Fatal("second invalidate should report not found")
	}
}

func TestSetAssocInsertNoAccessCount(t *testing.T) {
	c := NewSetAssoc("t", 4*LineSize, 2)
	c.Insert(9, true)
	if c.Stats().Accesses != 0 {
		t.Fatal("Insert must not count as an access")
	}
	if !c.Probe(9) {
		t.Fatal("inserted line should be present")
	}
	// Inserting the same line again must not duplicate it.
	c.Insert(9, false)
	hit, _ := c.Access(9, false)
	if !hit {
		t.Fatal("line should hit after insert")
	}
}

func TestSetAssocSetIsolation(t *testing.T) {
	c := NewSetAssoc("t", 8*LineSize, 2) // 4 sets
	// Lines 0,4,8 map to set 0; line 1 maps to set 1.
	c.Access(0, false)
	c.Access(1, false)
	c.Access(4, false)
	c.Access(8, false) // evicts 0 from set 0
	if c.Probe(0) {
		t.Fatal("line 0 should be evicted")
	}
	if !c.Probe(1) {
		t.Fatal("line 1 in another set must survive")
	}
}

func TestSetAssocPanicsOnBadGeometry(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("zero ways", func() { NewSetAssoc("x", 1024, 0) })
	mustPanic("non-multiple", func() { NewSetAssoc("x", 3*LineSize, 2) })
	mustPanic("non-pow2 sets", func() { NewSetAssoc("x", 6*LineSize, 2) })
}

func TestDirectMappedBasic(t *testing.T) {
	c := NewDirectMapped("mcdram", 4*LineSize)
	hit, _ := c.Access(0, false)
	if hit {
		t.Fatal("cold miss expected")
	}
	hit, _ = c.Access(0, false)
	if !hit {
		t.Fatal("hit expected")
	}
	// 4 maps to the same index as 0 in a 4-line DM cache.
	_, ev := c.Access(4, false)
	if !ev.Valid || ev.Addr != 0 {
		t.Fatalf("conflict eviction wrong: %+v", ev)
	}
	if c.Probe(0) {
		t.Fatal("0 should be displaced by 4")
	}
}

func TestDirectMappedConflictThrashing(t *testing.T) {
	// Two lines with the same index thrash in a DM cache but coexist in
	// a 2-way cache — the behavioural difference behind the paper's
	// cache-mode "set conflict" discussion.
	dm := NewDirectMapped("dm", 4*LineSize)
	sa := NewSetAssoc("sa", 4*LineSize, 2)
	for i := 0; i < 10; i++ {
		dm.Access(0, false)
		dm.Access(4, false)
		sa.Access(0, false)
		sa.Access(8, false) // same set in 2-set 2-way cache
	}
	if dm.Stats().Hits != 0 {
		t.Fatalf("DM thrashing should have 0 hits, got %d", dm.Stats().Hits)
	}
	if sa.Stats().Hits != 18 {
		t.Fatalf("2-way should hit 18 of 20, got %d", sa.Stats().Hits)
	}
}

func TestDirectMappedInvalidateInsert(t *testing.T) {
	c := NewDirectMapped("t", 4*LineSize)
	c.Insert(2, true)
	if c.Stats().Accesses != 0 {
		t.Fatal("insert must not count accesses")
	}
	found, dirty := c.Invalidate(2)
	if !found || !dirty {
		t.Fatalf("Invalidate = %v,%v", found, dirty)
	}
	c.Insert(3, false)
	c.Insert(3, true) // refresh dirties
	found, dirty = c.Invalidate(3)
	if !found || !dirty {
		t.Fatal("re-insert should have merged dirty bit")
	}
}

func TestDirectMappedPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-pow2 line count")
		}
	}()
	NewDirectMapped("x", 3*LineSize)
}

func TestReset(t *testing.T) {
	for _, c := range []Cache{
		NewSetAssoc("a", 8*LineSize, 2),
		NewDirectMapped("b", 8*LineSize),
	} {
		c.Access(1, true)
		c.Access(2, false)
		c.Reset()
		if c.Stats().Accesses != 0 {
			t.Fatal("reset should clear stats")
		}
		if c.Probe(1) || c.Probe(2) {
			t.Fatal("reset should clear contents")
		}
	}
}

// Property: a cache never holds more lines than its capacity, and a
// working set that fits entirely gets 100% hits after the first pass.
func TestPropertyFittingWorkingSetAllHits(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ways := []int{1, 2, 4, 8}[rng.Intn(4)]
		setsLog := 2 + rng.Intn(4)
		capBytes := int64((1<<setsLog)*ways) * LineSize
		var c Cache
		if ways == 1 && rng.Intn(2) == 0 {
			c = NewDirectMapped("p", capBytes)
		} else {
			c = NewSetAssoc("p", capBytes, ways)
		}
		// Working set: one line per set per way — guaranteed to fit.
		lines := make([]uint64, 0)
		sets := uint64(1 << setsLog)
		for s := uint64(0); s < sets; s++ {
			for w := 0; w < ways; w++ {
				lines = append(lines, s+uint64(w)*sets*8)
			}
		}
		for _, l := range lines {
			c.Access(l, false)
		}
		before := c.Stats().Hits
		for pass := 0; pass < 3; pass++ {
			for _, l := range lines {
				if hit, _ := c.Access(l, false); !hit {
					return false
				}
			}
		}
		return c.Stats().Hits == before+uint64(3*len(lines))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: accesses = hits + misses, and evictions never exceed misses.
func TestPropertyStatsConsistency(t *testing.T) {
	f := func(seed int64, nAccess uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewSetAssoc("p", 64*LineSize, 4)
		for i := 0; i < int(nAccess); i++ {
			c.Access(uint64(rng.Intn(256)), rng.Intn(3) == 0)
		}
		s := c.Stats()
		return s.Accesses == s.Hits+s.Misses &&
			s.Evictions <= s.Misses &&
			s.Writebacks <= s.Evictions
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Probe never changes behaviour (no stats, no replacement state
// visible through subsequent evictions with a deterministic pattern).
func TestPropertyProbeIsPure(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c1 := NewSetAssoc("a", 16*LineSize, 2)
		c2 := NewSetAssoc("b", 16*LineSize, 2)
		for i := 0; i < 200; i++ {
			l := uint64(rng.Intn(64))
			w := rng.Intn(2) == 0
			c1.Access(l, w)
			c2.Probe(uint64(rng.Intn(64))) // extra probes on c2
			c2.Access(l, w)
		}
		return *c1.Stats() == *c2.Stats()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSetAssocAccess(b *testing.B) {
	c := NewSetAssoc("l3", 6*1024*1024/4, 12) // scaled Broadwell L3
	rng := rand.New(rand.NewSource(1))
	addrs := make([]uint64, 1<<16)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1 << 18))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addrs[i&(len(addrs)-1)], i&7 == 0)
	}
}

func BenchmarkDirectMappedAccess(b *testing.B) {
	c := NewDirectMapped("mc", 256*1024*1024)
	rng := rand.New(rand.NewSource(1))
	addrs := make([]uint64, 1<<16)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1 << 24))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addrs[i&(len(addrs)-1)], i&7 == 0)
	}
}
