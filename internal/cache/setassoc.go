package cache

import "fmt"

// SetAssoc is a set-associative cache with true-LRU replacement,
// implemented with per-line timestamps (a hit only writes one counter,
// keeping the simulator's hot path free of shuffling).
type SetAssoc struct {
	name     string
	sets     int
	ways     int
	setMask  uint64
	tags     []uint64 // sets*ways
	valid    []bool
	dirty    []bool
	age      []uint64 // LRU timestamps
	clock    uint64
	stats    Stats
	capacity int64
}

// NewSetAssoc builds a set-associative cache of the given capacity in
// bytes with the given associativity. Capacity must be a multiple of
// ways*LineSize and the resulting set count must be a power of two.
func NewSetAssoc(name string, capacityBytes int64, ways int) *SetAssoc {
	if ways <= 0 {
		panic(fmt.Sprintf("cache %s: ways must be positive, got %d", name, ways))
	}
	lines := capacityBytes / LineSize
	if lines <= 0 || lines%int64(ways) != 0 {
		panic(fmt.Sprintf("cache %s: capacity %d not a multiple of ways*linesize", name, capacityBytes))
	}
	sets := int(lines) / ways
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache %s: set count %d not a power of two", name, sets))
	}
	return &SetAssoc{
		name:     name,
		sets:     sets,
		ways:     ways,
		setMask:  uint64(sets - 1),
		tags:     make([]uint64, sets*ways),
		valid:    make([]bool, sets*ways),
		dirty:    make([]bool, sets*ways),
		age:      make([]uint64, sets*ways),
		capacity: capacityBytes,
	}
}

// Name returns the cache's diagnostic name.
func (c *SetAssoc) Name() string { return c.name }

// Ways returns the associativity.
func (c *SetAssoc) Ways() int { return c.ways }

// Sets returns the number of sets.
func (c *SetAssoc) Sets() int { return c.sets }

// SizeBytes returns the capacity in bytes.
func (c *SetAssoc) SizeBytes() int64 { return c.capacity }

// Stats returns the accumulated statistics.
func (c *SetAssoc) Stats() *Stats { return &c.stats }

// Reset clears contents and statistics.
func (c *SetAssoc) Reset() {
	for i := range c.valid {
		c.valid[i] = false
		c.dirty[i] = false
		c.age[i] = 0
	}
	c.clock = 0
	c.stats = Stats{}
}

func (c *SetAssoc) setBase(lineAddr uint64) int {
	return int(lineAddr&c.setMask) * c.ways
}

// Access implements Cache.
func (c *SetAssoc) Access(lineAddr uint64, write bool) (bool, Line) {
	c.stats.Accesses++
	base := c.setBase(lineAddr)
	for i := base; i < base+c.ways; i++ {
		if c.tags[i] == lineAddr && c.valid[i] {
			c.stats.Hits++
			c.clock++
			c.age[i] = c.clock
			if write {
				c.dirty[i] = true
			}
			return true, Line{}
		}
	}
	c.stats.Misses++
	return false, c.fill(base, lineAddr, write)
}

// Probe implements Cache.
func (c *SetAssoc) Probe(lineAddr uint64) bool {
	base := c.setBase(lineAddr)
	for i := base; i < base+c.ways; i++ {
		if c.tags[i] == lineAddr && c.valid[i] {
			return true
		}
	}
	return false
}

// Invalidate implements Cache.
func (c *SetAssoc) Invalidate(lineAddr uint64) (bool, bool) {
	base := c.setBase(lineAddr)
	for i := base; i < base+c.ways; i++ {
		if c.tags[i] == lineAddr && c.valid[i] {
			d := c.dirty[i]
			c.valid[i] = false
			c.dirty[i] = false
			c.age[i] = 0
			return true, d
		}
	}
	return false, false
}

// Insert implements Cache.
func (c *SetAssoc) Insert(lineAddr uint64, dirty bool) Line {
	base := c.setBase(lineAddr)
	// If already present, refresh state instead of duplicating.
	for i := base; i < base+c.ways; i++ {
		if c.tags[i] == lineAddr && c.valid[i] {
			c.dirty[i] = c.dirty[i] || dirty
			c.clock++
			c.age[i] = c.clock
			return Line{}
		}
	}
	return c.fill(base, lineAddr, dirty)
}

// fill installs a line, evicting the LRU way if the set is full.
func (c *SetAssoc) fill(base int, lineAddr uint64, dirty bool) Line {
	victim := base
	var oldest uint64 = ^uint64(0)
	for i := base; i < base+c.ways; i++ {
		if !c.valid[i] {
			victim = i
			oldest = 0
			break
		}
		if c.age[i] < oldest {
			oldest, victim = c.age[i], i
		}
	}
	var ev Line
	if c.valid[victim] {
		ev = Line{Addr: c.tags[victim], Dirty: c.dirty[victim], Valid: true}
		c.stats.Evictions++
		if ev.Dirty {
			c.stats.Writebacks++
		}
	}
	c.clock++
	c.tags[victim] = lineAddr
	c.valid[victim] = true
	c.dirty[victim] = dirty
	c.age[victim] = c.clock
	return ev
}

var _ Cache = (*SetAssoc)(nil)
