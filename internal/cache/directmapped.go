package cache

import "fmt"

// DirectMapped is a direct-mapped cache. The MCDRAM cache mode on
// Knights Landing is direct-mapped with the tags stored in MCDRAM
// itself (Section 2.2 of the paper), which is why its conflict misses
// matter for the cache-vs-hybrid comparison the paper reports.
type DirectMapped struct {
	name     string
	setMask  uint64
	tags     []uint64
	valid    []bool
	dirty    []bool
	stats    Stats
	capacity int64
}

// NewDirectMapped builds a direct-mapped cache of the given capacity.
// The line count must be a power of two.
func NewDirectMapped(name string, capacityBytes int64) *DirectMapped {
	lines := capacityBytes / LineSize
	if lines <= 0 || lines&(lines-1) != 0 {
		panic(fmt.Sprintf("cache %s: line count %d not a power of two", name, lines))
	}
	return &DirectMapped{
		name:     name,
		setMask:  uint64(lines - 1),
		tags:     make([]uint64, lines),
		valid:    make([]bool, lines),
		dirty:    make([]bool, lines),
		capacity: capacityBytes,
	}
}

// Name returns the cache's diagnostic name.
func (c *DirectMapped) Name() string { return c.name }

// SizeBytes returns the capacity in bytes.
func (c *DirectMapped) SizeBytes() int64 { return c.capacity }

// Stats returns the accumulated statistics.
func (c *DirectMapped) Stats() *Stats { return &c.stats }

// Reset clears contents and statistics.
func (c *DirectMapped) Reset() {
	for i := range c.valid {
		c.valid[i] = false
		c.dirty[i] = false
	}
	c.stats = Stats{}
}

// Access implements Cache.
func (c *DirectMapped) Access(lineAddr uint64, write bool) (bool, Line) {
	c.stats.Accesses++
	idx := lineAddr & c.setMask
	if c.valid[idx] && c.tags[idx] == lineAddr {
		c.stats.Hits++
		if write {
			c.dirty[idx] = true
		}
		return true, Line{}
	}
	c.stats.Misses++
	ev := c.fill(idx, lineAddr, write)
	return false, ev
}

// Probe implements Cache.
func (c *DirectMapped) Probe(lineAddr uint64) bool {
	idx := lineAddr & c.setMask
	return c.valid[idx] && c.tags[idx] == lineAddr
}

// Invalidate implements Cache.
func (c *DirectMapped) Invalidate(lineAddr uint64) (bool, bool) {
	idx := lineAddr & c.setMask
	if c.valid[idx] && c.tags[idx] == lineAddr {
		d := c.dirty[idx]
		c.valid[idx] = false
		c.dirty[idx] = false
		return true, d
	}
	return false, false
}

// Insert implements Cache.
func (c *DirectMapped) Insert(lineAddr uint64, dirty bool) Line {
	idx := lineAddr & c.setMask
	if c.valid[idx] && c.tags[idx] == lineAddr {
		c.dirty[idx] = c.dirty[idx] || dirty
		return Line{}
	}
	return c.fill(idx, lineAddr, dirty)
}

func (c *DirectMapped) fill(idx, lineAddr uint64, dirty bool) Line {
	var ev Line
	if c.valid[idx] {
		ev = Line{Addr: c.tags[idx], Dirty: c.dirty[idx], Valid: true}
		c.stats.Evictions++
		if ev.Dirty {
			c.stats.Writebacks++
		}
	}
	c.tags[idx] = lineAddr
	c.valid[idx] = true
	c.dirty[idx] = dirty
	return ev
}

var _ Cache = (*DirectMapped)(nil)
