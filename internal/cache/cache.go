// Package cache provides the cache models used by the on-package-memory
// (OPM) hierarchy simulator: set-associative LRU caches, direct-mapped
// caches (the MCDRAM cache mode on Knights Landing is direct-mapped),
// and the victim-cache coupling used by the eDRAM L4 on Broadwell.
//
// All caches operate on line addresses (byte address >> LineShift) so
// callers can coalesce consecutive accesses cheaply. Caches are not
// safe for concurrent use; the simulator serializes the interleaved
// access stream of all virtual threads.
package cache

// LineSize is the cache line size in bytes used across the simulator.
// Both Broadwell and Knights Landing use 64-byte lines.
const LineSize = 64

// LineShift is log2(LineSize).
const LineShift = 6

// LineAddr converts a byte address into a line address.
func LineAddr(byteAddr uint64) uint64 { return byteAddr >> LineShift }

// Stats accumulates access statistics for one cache.
type Stats struct {
	Accesses   uint64 // total lookups
	Hits       uint64 // lookups that found the line
	Misses     uint64 // lookups that did not
	Evictions  uint64 // valid lines displaced by fills
	Writebacks uint64 // dirty lines displaced by fills
}

// MissRate returns Misses/Accesses, or 0 for an untouched cache.
func (s *Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// HitRate returns Hits/Accesses, or 0 for an untouched cache.
func (s *Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// Line describes a line displaced from a cache by a fill.
type Line struct {
	Addr  uint64 // line address of the displaced line
	Dirty bool   // whether it must be written back
	Valid bool   // false when the fill landed in an empty way
}

// Cache is the interface the hierarchy simulator drives.
//
// Access performs a lookup for a line and, on a miss, fills the line
// (allocate-on-miss for both reads and writes), returning the displaced
// line if any. Write hits mark the line dirty.
type Cache interface {
	// Access looks up lineAddr, fills on miss, and returns whether it
	// hit plus the line evicted by the fill (Valid=false if none).
	Access(lineAddr uint64, write bool) (hit bool, evicted Line)
	// Probe reports whether the line is present without changing
	// replacement state.
	Probe(lineAddr uint64) bool
	// Invalidate removes the line if present, reporting presence and
	// dirtiness. Used by the victim-cache promotion path.
	Invalidate(lineAddr uint64) (found, dirty bool)
	// Insert places a line without counting an access (fills arriving
	// from below or victims arriving from above). Returns the evicted
	// line if any.
	Insert(lineAddr uint64, dirty bool) Line
	// Stats returns the accumulated statistics.
	Stats() *Stats
	// SizeBytes returns the capacity in bytes.
	SizeBytes() int64
	// Reset clears contents and statistics.
	Reset()
}
