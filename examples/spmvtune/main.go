// spmvtune applies the paper's Section 6 optimization guideline to a
// concrete question: which MCDRAM mode should a KNL user pick for
// their sparse workload?
//
// It takes a Matrix Market file (or generates a representative matrix),
// evaluates SpMV and SpTRSV under every MCDRAM mode, and prints a
// recommendation following the guideline:
//
//   - data < 16 GB and bandwidth-bound  -> flat
//   - hot set < 8 GB but data > 16 GB   -> hybrid
//   - data > 16 GB with locality        -> cache
//   - latency-bound (SpTRSV-like)       -> MCDRAM gains little; DDR ok
//
// Run with: go run ./examples/spmvtune [matrix.mtx]
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/memsim"
	"repro/internal/platform"
	"repro/internal/sparse"
	"repro/internal/trace"
)

func main() {
	knl := platform.KNL()
	var mat *sparse.CSR
	if len(os.Args) > 1 {
		f, err := os.Open(os.Args[1])
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		mat, err = sparse.ReadMatrixMarket(f)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("loaded %s: %dx%d, %d nonzeros\n", os.Args[1], mat.Rows, mat.Cols, mat.NNZ())
	} else {
		// A representative mid-size PDE matrix (≈1 GB at paper scale).
		spec := sparse.Collection()[4]
		mat = spec.Instantiate(knl.Scale)
		fmt.Printf("no matrix given; generated %s (%dx%d, %d nnz, ~%d MB at paper scale)\n",
			spec.Name, mat.Rows, mat.Cols, mat.NNZ(), spec.PaperFootprint>>20)
	}

	spmv := &trace.SpMV{M: mat}
	sptrsv, err := trace.NewSpTRSV(mat)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-8s %12s %12s %10s\n", "mode", "SpMV GF/s", "SpTRSV GF/s", "bound")
	best := struct {
		mode   memsim.Mode
		gflops float64
	}{}
	var ddrSpMV, bestTRSV float64
	var ddrTRSV float64
	for _, mode := range knl.Modes {
		m, err := core.NewMachine(knl, mode)
		if err != nil {
			log.Fatal(err)
		}
		rv, err := m.Run(spmv)
		if err != nil {
			log.Fatal(err)
		}
		rt, err := m.Run(sptrsv)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %12.2f %12.2f %10s\n", mode, rv.GFlops, rt.GFlops, rv.Bound)
		if rv.GFlops > best.gflops {
			best.mode, best.gflops = mode, rv.GFlops
		}
		if mode == memsim.ModeDDR {
			ddrSpMV, ddrTRSV = rv.GFlops, rt.GFlops
		}
		if rt.GFlops > bestTRSV {
			bestTRSV = rt.GFlops
		}
	}

	fmt.Printf("\nrecommendation for SpMV: %s (%.2fx over DDR)\n", best.mode, best.gflops/ddrSpMV)
	paperFP := mat.FootprintBytes() * knl.Scale
	switch best.mode {
	case memsim.ModeFlat:
		fmt.Println("rationale: footprint fits MCDRAM and SpMV is bandwidth bound (Section 6 II)")
	case memsim.ModeCache:
		if paperFP <= 16<<30 {
			fmt.Println("rationale: the hardware-managed cache tracks the x-vector hot set as well as flat placement here (Section 4.2.1 IV)")
		} else {
			fmt.Println("rationale: data exceeds MCDRAM but has locality the cache can exploit (Section 6 IV)")
		}
	case memsim.ModeHybrid:
		fmt.Println("rationale: hot rows fit the cache half while the rest stays addressable (Section 6 III)")
	default:
		fmt.Println("rationale: the kernel is latency bound on this input; MCDRAM cannot help (Fig 19)")
	}
	if bestTRSV < ddrTRSV*1.15 {
		fmt.Println("note: SpTRSV on this matrix is latency bound — MCDRAM gains little (Fig 19's anomaly);")
		fmt.Println("      its dependency chains average", fmt.Sprintf("%.0f", sptrsv.AvgParallelism()), "parallel rows per level")
	}
}
