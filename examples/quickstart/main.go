// Quickstart: evaluate one kernel on both OPM platforms.
//
// This example shows the library's two halves working together:
//
//  1. the *numeric* kernels (internal/kernels) compute a real answer —
//     here a STREAM triad and an SpMV validated against a reference;
//  2. the *evaluation engine* (internal/core + internal/memsim) models
//     the same kernels on Broadwell eDRAM and KNL MCDRAM and reports
//     throughput, the binding bottleneck, and the OPM speedup.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/platform"
	"repro/internal/sparse"
	"repro/internal/trace"
)

func main() {
	// --- 1. Real computation ---------------------------------------
	n := 1 << 20
	x, a, b := make([]float64, n), make([]float64, n), make([]float64, n)
	for i := range a {
		a[i] = float64(i % 7)
		b[i] = float64(i % 3)
	}
	moved, err := kernels.StreamTriad(x, a, b, 2.0, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("triad over %d elements moved %d MB; x[5] = %v\n", n, moved>>20, x[5])

	mat := sparse.Poisson2D(256)
	vecX := make([]float64, mat.Cols)
	vecY := make([]float64, mat.Rows)
	for i := range vecX {
		vecX[i] = 1
	}
	if err := kernels.SpMV(mat, vecX, vecY, 0); err != nil {
		log.Fatal(err)
	}
	// Row sums of the Laplacian vanish in the interior (4 - 4·1).
	interior := 128*256 + 128
	fmt.Printf("SpMV on poisson2d(256): y[interior] = %v (zero row sum)\n", vecY[interior])

	// --- 2. OPM evaluation ------------------------------------------
	fmt.Println("\nSTREAM triad, 64 MB working set, on both platforms:")
	for _, plat := range platform.All() {
		w := trace.NewStream(plat.ScaledBytes(64 << 20))
		for _, mode := range plat.Modes {
			m, err := core.NewMachine(plat, mode)
			if err != nil {
				log.Fatal(err)
			}
			r, err := m.Run(w)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-18s %8.1f GB/s  (bound: %s)\n",
				m.Label(), r.MemGBs, r.Bound)
		}
	}

	fmt.Println("\nGEMM 8192x8192, tile 1024 (analytic dense model):")
	for _, plat := range platform.All() {
		for _, mode := range plat.Modes {
			m, err := core.NewMachine(plat, mode)
			if err != nil {
				log.Fatal(err)
			}
			r, err := m.RunDense(trace.DenseGEMM, 8192, 1024)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-18s %8.1f GFlop/s (bound: %s)\n", m.Label(), r.GFlops, r.Bound)
		}
	}
}
