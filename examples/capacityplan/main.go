// capacityplan is the procurement-study example the paper's
// introduction motivates (audience A: "procurement specialists
// considering purchasing OPM-equipped processors for the applications
// of interest").
//
// Given a mix of kernels with typical working-set sizes, it evaluates
// each on Broadwell (eDRAM on/off) and KNL (best MCDRAM mode vs DDR),
// applies the power model, and reports whether the OPM clears the
// Eq. 1 energy break-even for that mix.
//
// Run with: go run ./examples/capacityplan
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/memsim"
	"repro/internal/platform"
	"repro/internal/power"
	"repro/internal/roofline"
	"repro/internal/trace"
)

// mix is the application profile under procurement: kernel name plus
// typical paper-scale working set.
var mix = []struct {
	kernel string
	fp     int64
}{
	{"Stream", 96 << 20},
	{"Stencil", 512 << 20},
	{"FFT", 256 << 20},
}

func main() {
	fmt.Println("Procurement study: kernel mix vs OPM platforms")
	fmt.Println("\nRoofline placement (Fig 5) of the mix:")
	for _, p := range platform.All() {
		for _, pt := range roofline.Points(p) {
			for _, m := range mix {
				if pt.Kernel == m.kernel {
					fmt.Printf("  %-10s %-8s AI %6.3f: %7.1f GFlop/s on DRAM, %7.1f with %s\n",
						p.Name, pt.Kernel, pt.AI, pt.DRAMGFlops, pt.WithOPMGFlops, p.OPMKind)
				}
			}
		}
	}

	for _, plat := range platform.All() {
		model, err := power.ForPlatform(plat.Name)
		if err != nil {
			log.Fatal(err)
		}
		base, err := core.NewMachine(plat, memsim.ModeDDR)
		if err != nil {
			log.Fatal(err)
		}
		// The primary OPM mode: eDRAM on Broadwell, flat on KNL.
		opmMode := memsim.ModeEDRAM
		if plat.Name == "knl" {
			opmMode = memsim.ModeFlat
		}
		opm, err := core.NewMachine(plat, opmMode)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("\n=== %s: DDR baseline vs %s ===\n", plat.Name, opmMode)
		var sumSpeedup, sumPowerInc float64
		for _, mw := range mix {
			var w trace.Workload
			switch mw.kernel {
			case "Stream":
				w = trace.NewStream(plat.ScaledBytes(mw.fp))
			case "Stencil":
				w = trace.NewStencil(plat.ScaledBytes(mw.fp), plat.Scale)
			case "FFT":
				w = trace.NewFFT(plat.ScaledBytes(mw.fp))
			}
			rb, err := base.Run(w)
			if err != nil {
				log.Fatal(err)
			}
			ro, err := opm.Run(w)
			if err != nil {
				log.Fatal(err)
			}
			pb, po := model.Estimate(rb), model.Estimate(ro)
			speedup := ro.GFlops / rb.GFlops
			powerInc := (po.Total() - pb.Total()) / pb.Total()
			saves := power.SavesEnergy(speedup-1, powerInc)
			fmt.Printf("  %-8s %4d MB: %6.2fx speedup, %+5.1f%% power -> energy win: %v\n",
				mw.kernel, mw.fp>>20, speedup, powerInc*100, saves)
			sumSpeedup += speedup
			sumPowerInc += powerInc
		}
		avgSp := sumSpeedup/float64(len(mix)) - 1
		avgPw := sumPowerInc / float64(len(mix))
		fmt.Printf("  mix average: %+.1f%% performance at %+.1f%% power — Eq. 1 verdict: ", avgSp*100, avgPw*100)
		if power.SavesEnergy(avgSp, avgPw) {
			fmt.Printf("BUY the %s configuration (break-even was %.1f%%)\n", plat.OPMKind, power.BreakEvenGain(avgPw)*100)
		} else {
			fmt.Printf("the %s does not pay for itself on this mix\n", plat.OPMKind)
		}
	}
}
