// wave is a miniature seismic forward model — the application domain
// YASK's iso3dfd kernel comes from: it propagates an acoustic wave
// from a point source through a 3D volume with the 16th-order stencil,
// records a receiver trace, and recovers the source frequency with the
// FFT kernel (Bluestein plan, so the trace length need not be a power
// of two).
//
// It then asks the evaluation engine the paper's question for this
// workload: which platform/mode should run it?
//
// Run with: go run ./examples/wave [-n 64] [-steps 300]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/cmplx"

	"repro/internal/core"
	"repro/internal/fft"
	"repro/internal/platform"
	"repro/internal/stencil"
	"repro/internal/trace"
)

func main() {
	var (
		n     = flag.Int("n", 64, "cubic grid dimension")
		steps = flag.Int("steps", 300, "time steps")
	)
	flag.Parse()

	cur, err := stencil.NewGrid(*n, *n, *n)
	if err != nil {
		log.Fatal(err)
	}
	prev, _ := stencil.NewGrid(*n, *n, *n)
	scratch, _ := stencil.NewGrid(*n, *n, *n)

	// Ricker-wavelet point source at the volume centre; receiver offset
	// along x.
	const v2dt2 = 0.08 // CFL-stable velocity*dt squared
	srcX, srcY, srcZ := *n/2, *n/2, *n/2
	rcvX, rcvY, rcvZ := *n/2+(*n)/4, *n/2, *n/2
	const f0 = 0.05 // source frequency in cycles/step
	ricker := func(t float64) float64 {
		a := math.Pi * f0 * (t - 2/f0)
		return (1 - 2*a*a) * math.Exp(-a*a)
	}

	trace1 := make([]float64, *steps)
	next := scratch
	for s := 0; s < *steps; s++ {
		cur.Set(srcX, srcY, srcZ, cur.At(srcX, srcY, srcZ)+ricker(float64(s)))
		if err := stencil.Step(next, cur, prev, v2dt2, stencil.DefaultBlock, 0); err != nil {
			log.Fatal(err)
		}
		prev, cur, next = cur, next, prev
		trace1[s] = cur.At(rcvX, rcvY, rcvZ)
	}
	var peakT int
	peakV := 0.0
	for t, v := range trace1 {
		if math.Abs(v) > peakV {
			peakV, peakT = math.Abs(v), t
		}
	}
	fmt.Printf("propagated %d steps on %d^3 grid; receiver peak |p|=%.3g at step %d\n",
		*steps, *n, peakV, peakT)

	// Spectral analysis of the receiver trace with the arbitrary-length
	// FFT (the trace length is rarely a power of two).
	plan, err := fft.NewAnyPlan(*steps)
	if err != nil {
		log.Fatal(err)
	}
	spec := make([]complex128, *steps)
	for t, v := range trace1 {
		spec[t] = complex(v, 0)
	}
	if err := plan.Transform(spec, false); err != nil {
		log.Fatal(err)
	}
	best, bestMag := 0, 0.0
	for k := 1; k < *steps/2; k++ {
		if m := cmplx.Abs(spec[k]); m > bestMag {
			best, bestMag = k, m
		}
	}
	measured := float64(best) / float64(*steps)
	fmt.Printf("dominant receiver frequency: %.4f cycles/step (source %.4f)\n", measured, f0)
	if math.Abs(measured-f0) > f0 {
		log.Fatalf("spectral peak far from source frequency")
	}

	// OPM what-if: where should a production-size version of this run?
	fmt.Println("\nproduction grid (1024x1024x512, the paper's Broadwell upper sweep):")
	fp := int64(1024) * 1024 * 512 * 8 * 3
	for _, plat := range platform.All() {
		for _, mode := range plat.Modes {
			m, err := core.NewMachine(plat, mode)
			if err != nil {
				log.Fatal(err)
			}
			w := trace.NewStencil(plat.ScaledBytes(fp), plat.Scale)
			r, err := m.Run(w)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-18s %8.1f GFlop/s (bound %s)\n", m.Label(), r.GFlops, r.Bound)
		}
	}
}
