// cg solves a sparse SPD linear system with the conjugate-gradient
// method built entirely from this repository's kernels: SpMV drives
// the iteration, Stream-style vector updates move the data, and an
// optional symmetric Gauss-Seidel preconditioner exercises SpTRSV —
// the composition the paper's intro motivates ("scientific kernels are
// the essential building blocks for today's major applications").
//
// After converging, it estimates how the full solve would behave on
// both OPM platforms by replaying one CG iteration's memory behaviour
// through the evaluation engine.
//
// Run with: go run ./examples/cg [-k 96] [-precond]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/platform"
	"repro/internal/sparse"
	"repro/internal/trace"
)

func main() {
	var (
		k       = flag.Int("k", 96, "Poisson grid dimension (matrix order k²)")
		precond = flag.Bool("precond", false, "use symmetric Gauss-Seidel preconditioning (SpTRSV)")
		maxIter = flag.Int("maxiter", 2000, "iteration cap")
		tol     = flag.Float64("tol", 1e-8, "relative residual tolerance")
	)
	flag.Parse()

	a := sparse.Poisson2D(*k)
	n := a.Rows
	fmt.Printf("CG on poisson2d(%d): %d unknowns, %d nonzeros, precond=%v\n",
		*k, n, a.NNZ(), *precond)

	// Manufactured solution: x* = sin profile; b = A x*.
	want := make([]float64, n)
	for i := range want {
		want[i] = math.Sin(float64(i) * 0.01)
	}
	b := make([]float64, n)
	if err := kernels.SpMV(a, want, b, 0); err != nil {
		log.Fatal(err)
	}

	var pre *preconditioner
	if *precond {
		var err error
		pre, err = newPreconditioner(a)
		if err != nil {
			log.Fatal(err)
		}
	}

	x, iters, relres, err := conjugateGradient(a, b, pre, *maxIter, *tol)
	if err != nil {
		log.Fatal(err)
	}
	worst := 0.0
	for i := range x {
		if d := math.Abs(x[i] - want[i]); d > worst {
			worst = d
		}
	}
	fmt.Printf("converged in %d iterations, relative residual %.3g, max error vs truth %.3g\n",
		iters, relres, worst)

	// OPM what-if: one CG iteration is dominated by the SpMV; evaluate
	// it on every platform/mode.
	fmt.Println("\nper-iteration SpMV on the OPM platforms:")
	for _, plat := range platform.All() {
		mat := a
		if plat.Scale > 1 {
			// Use a suite matrix of comparable paper-scale footprint so
			// the simulated size stays proportional.
			mat = sparse.Poisson2D(*k)
		}
		w := &trace.SpMV{M: mat}
		for _, mode := range plat.Modes {
			m, err := core.NewMachine(plat, mode)
			if err != nil {
				log.Fatal(err)
			}
			r, err := m.Run(w)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-18s %8.2f GFlop/s (bound %s) -> est. %.2f ms/solve\n",
				m.Label(), r.GFlops, r.Bound, r.Seconds*float64(iters)*1e3)
		}
	}
}

// preconditioner applies symmetric Gauss-Seidel: z = (L D⁻¹ Lᵀ)⁻¹ r via
// one forward (SpTRSV) and one backward substitution.
type preconditioner struct {
	lower *sparse.CSR
	upper *sparse.CSR // CSR of Lᵀ (an upper-triangular system)
	sched *sparse.LevelSchedule
	diag  []float64
	tmp   []float64
}

func newPreconditioner(a *sparse.CSR) (*preconditioner, error) {
	l, err := a.LowerTriangle()
	if err != nil {
		return nil, err
	}
	sched, err := sparse.BuildLevels(l)
	if err != nil {
		return nil, err
	}
	diag := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		diag[i] = a.At(i, i)
		if diag[i] == 0 {
			return nil, fmt.Errorf("zero diagonal at row %d", i)
		}
	}
	return &preconditioner{
		lower: l,
		upper: sparse.Transpose(l),
		sched: sched,
		diag:  diag,
		tmp:   make([]float64, a.Rows),
	}, nil
}

// apply computes z = M⁻¹ r.
func (p *preconditioner) apply(r, z []float64) error {
	// Forward solve L y = r (level-scheduled SpTRSV).
	if err := kernels.SpTRSVWithSchedule(p.lower, p.sched, r, p.tmp, 0); err != nil {
		return err
	}
	for i := range p.tmp {
		p.tmp[i] *= p.diag[i]
	}
	// Backward solve Lᵀ z = y: the transpose of a lower system is
	// upper triangular; solve it row-by-row in reverse.
	u := p.upper
	for i := u.Rows - 1; i >= 0; i-- {
		s := p.tmp[i]
		var d float64
		for q := u.RowPtr[i]; q < u.RowPtr[i+1]; q++ {
			c := u.ColIdx[q]
			if int(c) == i {
				d = u.Val[q]
			} else {
				s -= u.Val[q] * z[c]
			}
		}
		z[i] = s / d
	}
	return nil
}

// conjugateGradient runs (preconditioned) CG and returns the solution,
// iteration count and final relative residual.
func conjugateGradient(a *sparse.CSR, b []float64, pre *preconditioner, maxIter int, tol float64) ([]float64, int, float64, error) {
	n := a.Rows
	x := make([]float64, n)
	r := append([]float64(nil), b...)
	z := make([]float64, n)
	if pre != nil {
		if err := pre.apply(r, z); err != nil {
			return nil, 0, 0, err
		}
	} else {
		copy(z, r)
	}
	p := append([]float64(nil), z...)
	ap := make([]float64, n)
	rz := dot(r, z)
	bnorm := math.Sqrt(dot(b, b))
	if bnorm == 0 {
		return x, 0, 0, nil
	}
	for it := 1; it <= maxIter; it++ {
		if err := kernels.SpMV(a, p, ap, 0); err != nil {
			return nil, 0, 0, err
		}
		alpha := rz / dot(p, ap)
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		relres := math.Sqrt(dot(r, r)) / bnorm
		if relres < tol {
			return x, it, relres, nil
		}
		if pre != nil {
			if err := pre.apply(r, z); err != nil {
				return nil, 0, 0, err
			}
		} else {
			copy(z, r)
		}
		rzNew := dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	return x, maxIter, math.Sqrt(dot(r, r)) / bnorm, fmt.Errorf("CG did not converge in %d iterations", maxIter)
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
