// steppingviz renders the paper's Stepping model (Figures 6, 28, 29,
// 30) for an architect exploring OPM design points: how big and how
// fast must an on-package memory be for a given kernel profile?
//
// Run with: go run ./examples/steppingviz [flags]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/plot"
	"repro/internal/stepping"
)

// curve evaluates one stepping model, exiting with the error on bad
// flag combinations instead of panicking (stepping.MustModel is
// deprecated).
func curve(name string, levels []stepping.Level, k stepping.Kernel, minFP, maxFP int64, points int) stepping.Curve {
	c, err := stepping.Model(name, levels, k, minFP, maxFP, points)
	if err != nil {
		fmt.Fprintln(os.Stderr, "steppingviz:", err)
		os.Exit(1)
	}
	return c
}

func main() {
	var (
		ai     = flag.Float64("ai", 0.0625, "kernel arithmetic intensity (flops/byte)")
		peak   = flag.Float64("peak", 200, "compute ceiling, GFlop/s")
		opmCap = flag.Int64("opmcap", 128<<20, "OPM capacity, bytes")
		opmBW  = flag.Float64("opmbw", 72, "OPM sustained bandwidth, GB/s")
	)
	flag.Parse()

	kernel := stepping.Kernel{Name: "kernel", AI: *ai, PeakGFlops: *peak, MLP: 64, RampFactor: 6}
	base := []stepping.Level{
		{Name: "L3", Cap: 6 << 20, BWGBs: 150, LatNS: 12},
		{Name: "OPM", Cap: *opmCap, BWGBs: *opmBW, LatNS: 42, OPM: true},
		{Name: "DDR", Cap: 0, BWGBs: 20, LatNS: 85},
	}
	noOPM := []stepping.Level{base[0], base[2]}

	minFP, maxFP := int64(1<<20), int64(8)<<30
	with := curve("w/ OPM", base, kernel, minFP, maxFP, 120)
	without := curve("w/o OPM", noOPM, kernel, minFP, maxFP, 120)

	fmt.Println(plot.Lines("Stepping model: throughput vs footprint",
		[]plot.Series{toSeries(without), toSeries(with)}, 72, 16, true))

	lo, hi, ok := stepping.EffectiveRegion(with, without, 1.0001)
	if ok {
		fmt.Printf("performance-effective region: %d MB .. %d MB\n", lo>>20, hi>>20)
	} else {
		fmt.Println("the OPM never helps this kernel profile")
	}
	lo, hi, ok = stepping.EffectiveRegion(with, without, 1.086)
	if ok {
		fmt.Printf("energy-effective region (Eq. 1, +8.6%% power): %d MB .. %d MB\n", lo>>20, hi>>20)
	} else {
		fmt.Println("no energy-effective region at +8.6% power")
	}

	fmt.Println("\nHardware what-ifs (Fig 30):")
	cap2 := curve("2x capacity",
		stepping.ScaleCapacity(base, "OPM", 2), kernel, minFP, maxFP, 120)
	bw2 := curve("2x bandwidth",
		stepping.ScaleBandwidth(base, "OPM", 2), kernel, minFP, maxFP, 120)
	fmt.Println(plot.Lines("capacity vs bandwidth scaling",
		[]plot.Series{toSeries(with), toSeries(cap2), toSeries(bw2)}, 72, 14, true))
}

func toSeries(c stepping.Curve) plot.Series {
	s := plot.Series{Name: c.Name}
	for _, p := range c.Points {
		s.X = append(s.X, float64(p.Footprint))
		s.Y = append(s.Y, p.GFlops)
	}
	return s
}
