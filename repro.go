// Package repro is the public facade of the reproduction of
// "Exploring and Analyzing the Real Impact of Modern On-Package Memory
// on HPC Scientific Kernels" (SC'17).
//
// The library has three layers:
//
//   - substrates: sparse/dense/FFT/stencil numeric kernels
//     (internal/kernels, internal/sparse, internal/fft,
//     internal/stencil) and the memory-hierarchy simulator
//     (internal/cache, internal/memsim);
//   - the evaluation engine (internal/core): Machines pairing a
//     platform (Table 3) with a memory mode (Table 1), running kernel
//     workloads through the simulator and the executable Stepping
//     model;
//   - the experiment harness (internal/harness): one runner per table
//     and figure of the paper.
//
// This package re-exports the types most users need so examples and
// downstream code can write repro.NewMachine(repro.Broadwell(),
// repro.ModeEDRAM) without importing the internal tree. See README.md
// for a tour and DESIGN.md for the substitution notes (the study's
// hardware is modelled, not required).
package repro

import (
	"context"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/memsim"
	"repro/internal/platform"
	"repro/internal/trace"
)

// Re-exported core types.
type (
	// Machine is one platform in one memory mode.
	Machine = core.Machine
	// Platform describes an evaluation machine (Table 3).
	Platform = platform.Platform
	// Mode selects the memory configuration (Table 1).
	Mode = memsim.Mode
	// Result is one evaluated kernel run.
	Result = memsim.Result
	// Workload generates a kernel's simulated memory behaviour.
	Workload = trace.Workload
	// Experiment reproduces one table or figure.
	Experiment = harness.Experiment
	// Report is an experiment's outcome.
	Report = harness.Report
	// Options controls experiment scale and output.
	Options = harness.Options
)

// Memory modes (Table 1).
const (
	ModeDDR    = memsim.ModeDDR
	ModeEDRAM  = memsim.ModeEDRAM
	ModeCache  = memsim.ModeCache
	ModeFlat   = memsim.ModeFlat
	ModeHybrid = memsim.ModeHybrid
	// ModeEDRAMMemSide is the Skylake-style memory-side eDRAM
	// arrangement (extension platform).
	ModeEDRAMMemSide = memsim.ModeEDRAMMemSide
)

// Dense kernels with analytic heat-map models.
const (
	GEMM     = trace.DenseGEMM
	Cholesky = trace.DenseCholesky
)

// Broadwell returns the i7-5775c platform (eDRAM OPM).
func Broadwell() *Platform { return platform.Broadwell() }

// KNL returns the Xeon Phi 7210 platform (MCDRAM OPM).
func KNL() *Platform { return platform.KNL() }

// Skylake returns the extension platform with memory-side eDRAM.
func Skylake() *Platform { return platform.Skylake() }

// Platforms returns both evaluation machines.
func Platforms() []*Platform { return platform.All() }

// NewMachine pairs a platform with a memory mode.
func NewMachine(p *Platform, mode Mode) (*Machine, error) { return core.NewMachine(p, mode) }

// NewStream builds a STREAM triad workload of the given simulated
// footprint (use Platform.ScaledBytes to convert paper sizes).
func NewStream(simFootprint int64) Workload { return trace.NewStream(simFootprint) }

// NewStencil builds an iso3dfd workload; scale shrinks the paper's
// 64×64×96 blocking along with the platform's capacity scale.
func NewStencil(simFootprint, scale int64) Workload { return trace.NewStencil(simFootprint, scale) }

// NewFFT builds a 3D FFT workload.
func NewFFT(simFootprint int64) Workload { return trace.NewFFT(simFootprint) }

// Experiments lists every reproducible table and figure in paper
// order.
func Experiments() []Experiment { return harness.Registry() }

// RunExperiment runs one experiment by ID ("fig7", "table4", ...).
func RunExperiment(id string, opt Options) (*Report, error) {
	//opmlint:allow ctxflow — the documented convenience entry point; callers who need cancellation use RunExperimentContext
	return RunExperimentContext(context.Background(), id, opt)
}

// RunExperimentContext is RunExperiment under a caller-provided
// context: cancellation or deadline expiry aborts the experiment's
// sweeps mid-flight.
func RunExperimentContext(ctx context.Context, id string, opt Options) (*Report, error) {
	e, err := harness.Get(id)
	if err != nil {
		return nil, err
	}
	return e.Run(ctx, opt)
}
