// Command opmcalib calibrates the analytic twin (internal/twin)
// against the exact simulator and gates its error: it sweeps both
// estimators over a paper-shaped grid, prints per-family MAPE and
// Pearson r, and optionally checks the result against (or rewrites)
// the checked-in baseline scripts/calib-baseline.json.
//
// Usage:
//
//	opmcalib                  # print the quick-grid report
//	opmcalib -check           # exit 1 if any family regressed past baseline
//	opmcalib -write-baseline  # re-baseline after a deliberate model change
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/twin/calib"
)

func main() {
	var (
		full     = flag.Bool("full", false, "dense calibration grid (re-baselining)")
		baseline = flag.String("baseline", "scripts/calib-baseline.json", "baseline file")
		check    = flag.Bool("check", false, "fail if any family's MAPE regressed past baseline")
		slack    = flag.Float64("slack", 0.10, "fractional headroom over baseline before -check fails")
		write    = flag.Bool("write-baseline", false, "rewrite the baseline from this run")
		out      = flag.String("out", "", "write the full report (including cells) as JSON")
	)
	flag.Parse()
	if err := run(*full, *baseline, *check, *slack, *write, *out); err != nil {
		fmt.Fprintln(os.Stderr, "opmcalib:", err)
		os.Exit(1)
	}
}

func run(full bool, baseline string, check bool, slack float64, write bool, out string) error {
	rep, err := calib.Run(context.Background(), calib.Options{Full: full})
	if err != nil {
		return err
	}
	fmt.Printf("twin calibration (%s vs %s)\n", rep.TwinVersion, rep.ExactVersion)
	fmt.Printf("%-10s %6s %10s %10s\n", "family", "cells", "MAPE", "pearson r")
	for _, f := range rep.Families {
		fmt.Printf("%-10s %6d %9.2f%% %10.4f\n", f.Family, f.Cells, 100*f.MAPE, f.R)
	}
	if out != "" {
		data, err := reportJSON(rep)
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, data, 0o644); err != nil {
			return err
		}
	}
	if write {
		if err := rep.WriteBaseline(baseline); err != nil {
			return err
		}
		fmt.Println("baseline written:", baseline)
	}
	if check {
		b, err := calib.LoadBaseline(baseline)
		if err != nil {
			return err
		}
		if err := rep.Check(b, slack); err != nil {
			return err
		}
		fmt.Println("baseline check: ok")
	}
	return nil
}

func reportJSON(rep *calib.Report) ([]byte, error) {
	return json.MarshalIndent(rep, "", "  ")
}
