// Command opmshard runs a curve sweep sharded across supervised
// worker processes and merges the per-shard journals into one
// canonical store, byte-identical to what a sequential single-process
// run writes. The coordinator partitions cells by content digest,
// restarts crashed workers with exponential backoff, kills and
// replaces hung ones (heartbeat staleness), steals work off the
// slowest shard, and survives being killed itself: rerun with
// -generation bumped and it resumes from the shard journals without
// recomputing committed cells.
//
// Usage:
//
//	opmshard -dir run                        # quick-grid curve sweep, N shards
//	opmshard -dir run -shards 8 -full        # full 32-point grid
//	opmshard -dir run -kernels Stream,FFT    # subset of the curve roster
//	opmshard -dir run -estimator twin        # analytic twin cells
//	opmshard -dir run -verify                # also run sequentially and byte-compare
//	opmshard -dir run -faults "seed=7,proc:kill@0.3"   # chaos drill
//	opmshard -dir run -generation 1          # resume after a coordinator crash
//
// Exit codes: 0 success, 1 failure (including quarantined cells or a
// failed -verify), 2 usage error, 3 injected coordinator crash (the
// chaos drill's expected mid-run exit; resume with -generation+1).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/shard"
)

func main() {
	// The re-exec seam: when the coordinator spawns a worker, the
	// child is this same binary with the manifest env var set, and
	// never reaches the CLI below.
	shard.RunWorkerEnv()
	os.Exit(run())
}

func run() int {
	var (
		platform   = flag.String("platform", "broadwell", "curve platform: broadwell or knl")
		kernels    = flag.String("kernels", "", "comma-separated curve kernels (default: Stream,Stencil,FFT)")
		points     = flag.Int("points", 0, "footprint grid points (0 = 16, or 32 with -full)")
		full       = flag.Bool("full", false, "use the paper's full 32-point grid")
		estimator  = flag.String("estimator", "exact", "result estimator: exact, twin, or auto")
		twinMaxErr = flag.Float64("twin-max-err", 0.10, "with -estimator=auto: twin only below this calibrated error bound")

		dir        = flag.String("dir", "", "run directory (worker journals, merged store at <dir>/store)")
		shards     = flag.Int("shards", 4, "worker process count")
		generation = flag.Int("generation", 0, "coordinator incarnation; bump by one when resuming after a crash")
		faults     = flag.String("faults", "", "chaos spec, e.g. \"seed=7,proc:kill@0.3,proc:torn@0.2,coord:crash@1\" (see README fault grammar)")

		heartbeat   = flag.Duration("heartbeat", 100*time.Millisecond, "worker heartbeat period")
		stall       = flag.Duration("stall", 5*time.Second, "kill a worker whose heartbeat froze for this long")
		maxRestarts = flag.Int("max-restarts", 5, "retire a shard after this many restarts and reassign its cells")
		timeout     = flag.Duration("timeout", 0, "abort the whole run after this long (0 = no limit)")

		verify    = flag.Bool("verify", false, "after merging, run the sweep sequentially and fail unless the stores are byte-identical")
		metrics   = flag.String("metrics", "", "write metrics registry as JSON to this file at exit")
		traceFile = flag.String("trace", "", "append coordinator and merge trace events to this JSONL file")
		logLevel  = flag.String("log-level", "", "structured logging on stderr at this level (debug|info|warn|error; off when empty)")
		logJSON   = flag.Bool("log-json", false, "emit structured logs as JSON instead of text (needs -log-level)")
	)
	flag.Parse()

	if *dir == "" {
		fmt.Fprintln(os.Stderr, "opmshard: -dir required")
		return 2
	}
	spec := shard.Spec{
		Platform:   *platform,
		Points:     *points,
		Full:       *full,
		Estimator:  *estimator,
		TwinMaxErr: *twinMaxErr,
	}
	if *kernels != "" {
		spec.Kernels = strings.Split(*kernels, ",")
	}

	reg := obs.NewRegistry()
	var logger *slog.Logger
	if *logLevel != "" {
		lvl, err := obs.ParseLevel(*logLevel)
		if err != nil {
			fmt.Fprintln(os.Stderr, "opmshard:", err)
			return 2
		}
		logger = obs.NewLogger(os.Stderr, lvl, *logJSON)
	}
	var tracer *obs.Tracer
	if *traceFile != "" {
		tracer = obs.NewTracer(0)
		if err := tracer.SinkFile(*traceFile); err != nil {
			fmt.Fprintln(os.Stderr, "opmshard:", err)
			return 2
		}
		defer func() {
			if err := tracer.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "opmshard: trace sink:", err)
			}
		}()
	}
	manifest := obs.NewManifest("opmshard")
	manifest.ConfigHash = obs.Hash(*platform, *kernels, *points, *full, *estimator, *shards)
	if *metrics != "" {
		defer func() {
			manifest.Finish()
			if err := reg.WriteFile(*metrics, manifest); err != nil {
				fmt.Fprintln(os.Stderr, "opmshard:", err)
			}
		}()
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	rep, err := shard.Run(ctx, shard.Options{
		Spec:           spec,
		Dir:            *dir,
		Shards:         *shards,
		Faults:         *faults,
		Generation:     *generation,
		Reg:            reg,
		Trace:          tracer,
		Log:            logger,
		HeartbeatEvery: *heartbeat,
		StallAfter:     *stall,
		MaxRestarts:    *maxRestarts,
	})
	if errors.Is(err, shard.ErrInjectedCrash) {
		fmt.Fprintf(os.Stderr, "opmshard: injected coordinator crash; resume with -generation %d\n", *generation+1)
		return 3
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "opmshard:", err)
		return 1
	}
	fmt.Printf("opmshard: %d cells (%d resumed, %d computed) across %d spawns: %d restarts, %d kills, %d steals\n",
		rep.Cells, rep.Resumed, rep.Committed, rep.Spawns, rep.Restarts, rep.Kills, rep.Steals)
	fmt.Printf("opmshard: merged %d cells (%d duplicates) -> %s\n", rep.Merge.Cells, rep.Merge.Duplicates, rep.OutDir)
	if rep.Merge.Quarantined > 0 {
		fmt.Fprintf(os.Stderr, "opmshard: %d cells QUARANTINED (shards disagreed on bytes): see %s\n",
			rep.Merge.Quarantined, filepath.Join(*dir, "quarantine.json"))
		return 1
	}

	if *verify {
		p, err := shard.NewPlan(spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "opmshard:", err)
			return 1
		}
		seqDir := filepath.Join(*dir, "seq")
		if err := shard.RunSequential(ctx, p, seqDir, reg); err != nil {
			fmt.Fprintln(os.Stderr, "opmshard: verify:", err)
			return 1
		}
		for _, name := range []string{"journal", "index.json"} {
			a, err := os.ReadFile(filepath.Join(rep.OutDir, name))
			if err != nil {
				fmt.Fprintln(os.Stderr, "opmshard: verify:", err)
				return 1
			}
			b, err := os.ReadFile(filepath.Join(seqDir, name))
			if err != nil {
				fmt.Fprintln(os.Stderr, "opmshard: verify:", err)
				return 1
			}
			if string(a) != string(b) {
				fmt.Fprintf(os.Stderr, "opmshard: verify FAILED: merged %s diverges from sequential (%d vs %d bytes)\n",
					name, len(a), len(b))
				return 1
			}
		}
		fmt.Println("opmshard: verify ok — merged store byte-identical to sequential run")
	}
	return 0
}
