// Command opmprof analyzes a JSONL job trace written by opmbench
// -trace: it reconstructs every job's causal event chain, attributes
// the run's wall time to phases (queue wait, compute, store I/O, retry
// backoff), rebuilds the per-worker timeline, names the critical-path
// job — the one whose completion set the makespan — and prints the
// top-k slowest jobs with their full chains. With -perfetto it also
// exports a Chrome trace-event JSON loadable at ui.perfetto.dev.
//
// Usage:
//
//	opmbench -exp fig9 -trace run.jsonl
//	opmprof -trace run.jsonl                    # phase breakdown + top-5
//	opmprof -trace run.jsonl -top 10            # more slow jobs
//	opmprof -trace run.jsonl -perfetto run.json # Perfetto/chrome://tracing export
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/obs"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		traceFile = flag.String("trace", "", "JSONL trace file written by opmbench -trace (required)")
		perfetto  = flag.String("perfetto", "", "also export a Chrome trace-event / Perfetto JSON to this file")
		top       = flag.Int("top", 5, "print this many slowest jobs with their event chains")
	)
	flag.Parse()
	if *traceFile == "" {
		fmt.Fprintln(os.Stderr, "opmprof: -trace required; e.g. opmprof -trace run.jsonl")
		return 2
	}
	events, err := obs.ReadTraceFile(*traceFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "opmprof:", err)
		return 2
	}
	if len(events) == 0 {
		fmt.Fprintf(os.Stderr, "opmprof: %s holds no events\n", *traceFile)
		return 1
	}
	p := obs.AnalyzeTrace(events)

	fmt.Printf("trace %s: %d events, %d jobs (%d cache hits, %d failed), makespan %s\n",
		*traceFile, len(events), p.Jobs, p.Hits, p.Failures, obs.FmtNS(p.MakespanNS))

	fmt.Println("\nwall-time breakdown by phase (summed over jobs):")
	var phaseTotal int64
	for _, ph := range p.PhaseBreakdown() {
		phaseTotal += ph.NS
	}
	for _, ph := range p.PhaseBreakdown() {
		share := 0.0
		if phaseTotal > 0 {
			share = 100 * float64(ph.NS) / float64(phaseTotal)
		}
		fmt.Printf("  %-14s %10s  %5.1f%%\n", ph.Label, obs.FmtNS(ph.NS), share)
	}

	fmt.Println("\nper-worker timeline:")
	for _, ws := range p.Workers {
		name := fmt.Sprintf("worker %d", ws.Worker)
		if ws.Worker < 0 {
			name = "store hits"
		}
		fmt.Printf("  %-12s %4d jobs  busy %s\n", name, ws.Jobs, obs.FmtNS(ws.BusyNS))
	}

	if crit := p.CriticalPath(); crit != nil {
		fmt.Printf("\ncritical path (job that set the makespan): %s\n", jobName(crit))
		fmt.Printf("  wall %s = queue %s + compute %s + store %s + backoff %s\n",
			obs.FmtNS(crit.WallNS()), obs.FmtNS(crit.QueueNS), obs.FmtNS(crit.ComputeNS),
			obs.FmtNS(crit.StoreNS), obs.FmtNS(crit.BackoffNS))
		printChain(crit)
	}

	if *top > 0 {
		fmt.Printf("\ntop %d slowest jobs:\n", *top)
		for i, c := range p.TopSlowest(*top) {
			fmt.Printf("%2d. %s  wall %s (queue %s, compute %s, store %s, backoff %s)%s\n",
				i+1, jobName(c), obs.FmtNS(c.WallNS()), obs.FmtNS(c.QueueNS),
				obs.FmtNS(c.ComputeNS), obs.FmtNS(c.StoreNS), obs.FmtNS(c.BackoffNS), chainFlags(c))
			printChain(c)
		}
	}

	if *perfetto != "" {
		if err := obs.WriteChromeTraceFile(*perfetto, events); err != nil {
			fmt.Fprintln(os.Stderr, "opmprof:", err)
			return 1
		}
		fmt.Printf("\nwrote Perfetto trace to %s (load at ui.perfetto.dev)\n", *perfetto)
	}
	return 0
}

func jobName(c *obs.JobChain) string {
	if c.Job != "" {
		return c.Job
	}
	return c.Trace
}

// chainFlags summarizes the chain's notable properties inline.
func chainFlags(c *obs.JobChain) string {
	var flags []string
	if c.CacheHit {
		flags = append(flags, "cache hit")
	}
	if c.Retries > 0 {
		flags = append(flags, fmt.Sprintf("%d retries", c.Retries))
	}
	if c.Faults > 0 {
		flags = append(flags, fmt.Sprintf("%d faults", c.Faults))
	}
	if c.Escalations > 0 {
		flags = append(flags, fmt.Sprintf("%d escalations", c.Escalations))
	}
	if c.Failed {
		flags = append(flags, "FAILED")
	}
	if len(flags) == 0 {
		return ""
	}
	return "  [" + strings.Join(flags, ", ") + "]"
}

// printChain renders one job's event chain, one event per line,
// timestamps relative to the chain's first event.
func printChain(c *obs.JobChain) {
	for _, ev := range c.Events {
		line := fmt.Sprintf("      +%-10s %s", obs.FmtNS(ev.TSNS-c.StartNS), ev.Name)
		if ev.DurNS > 0 {
			line += fmt.Sprintf(" (%s)", obs.FmtNS(ev.DurNS))
		}
		if ev.Detail != "" {
			detail := ev.Detail
			if len(detail) > 80 {
				detail = detail[:77] + "..."
			}
			line += " " + detail
		}
		fmt.Println(line)
	}
}
