// Command opmlint is the repo's contract linter: a standard-library-
// only static-analysis pass enforcing the determinism, telemetry and
// resilience contracts the published figures depend on (see
// internal/lint and DESIGN.md §10). It is a hard gate in
// scripts/check.sh and `make lint`.
//
// Usage:
//
//	opmlint [-json|-sarif] [-checks determinism,ctxflow,...] [packages...]
//
// Packages are directories relative to the working directory; a
// trailing /... walks the subtree (default ./...). -json emits the
// deterministic array scripts/lint-diff.sh ratchets on; -sarif emits
// SARIF 2.1.0 for GitHub code scanning. Exit status: 0 clean, 1
// findings, 2 the tree could not be loaded or type-checked.
//
// Suppress a finding with an auditable annotation on or above the
// offending line (or in the enclosing declaration's doc comment):
//
//	//opmlint:allow <check> — <reason>
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("opmlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array (for scripts/lint-diff.sh)")
	sarifOut := fs.Bool("sarif", false, "emit findings as SARIF 2.1.0 (for GitHub code scanning)")
	checksFlag := fs.String("checks", "", "comma-separated checks to run (default: all)")
	list := fs.Bool("list", false, "list available checks and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: opmlint [-json|-sarif] [-checks c1,c2] [-list] [packages...]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, c := range lint.AllChecks() {
			fmt.Fprintf(stdout, "%-14s %s\n", c.Name, c.Doc)
		}
		return 0
	}
	checks, err := lint.CheckByName(*checksFlag)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(stderr, "opmlint: -json and -sarif are mutually exclusive")
		return 2
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	findings, err := lint.Run(cwd, lint.Options{Patterns: fs.Args(), Checks: checks})
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if *sarifOut {
		out, err := lint.FormatSARIF(findings, checks)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		fmt.Fprint(stdout, out)
	} else if *jsonOut {
		out, err := lint.FormatJSON(findings)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		fmt.Fprint(stdout, out)
	} else {
		fmt.Fprint(stdout, lint.FormatText(findings))
		if len(findings) > 0 {
			fmt.Fprintf(stderr, "opmlint: %d finding(s)\n", len(findings))
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}
