package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/lint"
)

// TestBrokenFixtureFailsGate is the acceptance test behind the
// scripts/check.sh hard gate: linting a deliberately broken fixture
// must exit 1 and name the violation with file:line.
func TestBrokenFixtureFailsGate(t *testing.T) {
	root, _, err := lint.FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	t.Chdir(root)

	var stdout, stderr bytes.Buffer
	code := run([]string{"internal/lint/testdata/rangesort/rangesort"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("want exit 1 on broken fixture, got %d (stderr: %s)", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "internal/lint/testdata/rangesort/rangesort/bad.go:") {
		t.Errorf("findings should carry file:line into bad.go, got:\n%s", stdout.String())
	}
	if !strings.Contains(stdout.String(), "[rangesort]") {
		t.Errorf("findings should name the check, got:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "finding(s)") {
		t.Errorf("stderr should summarize the count, got: %s", stderr.String())
	}
}

// TestJSONOutput: -json emits a parseable array with the fields
// scripts/lint-diff.sh keys on.
func TestJSONOutput(t *testing.T) {
	root, _, err := lint.FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	t.Chdir(root)

	var stdout, stderr bytes.Buffer
	code := run([]string{"-json", "internal/lint/testdata/errdiscard/store"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("want exit 1, got %d (stderr: %s)", code, stderr.String())
	}
	var findings []lint.Finding
	if err := json.Unmarshal(stdout.Bytes(), &findings); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, stdout.String())
	}
	if len(findings) == 0 {
		t.Fatal("want findings in JSON output, got none")
	}
	for _, f := range findings {
		if f.File == "" || f.Line == 0 || f.Check == "" || f.Msg == "" {
			t.Errorf("finding missing fields: %+v", f)
		}
	}
}

// TestCleanPackageExitsZero: a contract-clean package passes the gate.
func TestCleanPackageExitsZero(t *testing.T) {
	root, _, err := lint.FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	t.Chdir(root)

	var stdout, stderr bytes.Buffer
	code := run([]string{"internal/stats"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("want exit 0 on clean package, got %d\nstdout: %s\nstderr: %s",
			code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean run should print nothing, got: %s", stdout.String())
	}
}

// TestListAndBadFlags: -list names every check; unknown -checks exits 2.
func TestListAndBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list: want exit 0, got %d", code)
	}
	for _, c := range lint.AllChecks() {
		if !strings.Contains(stdout.String(), c.Name) {
			t.Errorf("-list output missing check %q:\n%s", c.Name, stdout.String())
		}
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-checks", "nosuchcheck"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown -checks: want exit 2, got %d", code)
	}
}
