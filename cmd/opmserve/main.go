// Command opmserve is the long-running sweep/query daemon: the HTTP
// serving layer (internal/serve) over the content-addressed result
// store and the sweep engine. Most traffic is sub-millisecond hot-set
// or journal hits; misses are admitted through per-class token buckets
// and routed onto a pool of persistent sweep workers. SIGINT/SIGTERM
// drains gracefully: accepted requests finish, then the store closes.
//
//	opmserve -store .opmstore -addr localhost:8080
//	curl -s localhost:8080/v1/query -d '{"platform":"broadwell","mode":"edram","kernel":"Stream","footprint_bytes":1048576}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/serve"
	"repro/internal/store"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		addr    = flag.String("addr", "localhost:8080", "listen address")
		storeD  = flag.String("store", "", "persistent result store directory (strongly recommended; empty serves from memory only)")
		workers = flag.Int("workers", 4, "persistent sweep worker pool size")
		router  = flag.String("router", "affinity", "cold-path shard router: affinity, least-loaded or round-robin")
		hotSet  = flag.Int("hot", 4096, "hot-set capacity in cells (in-memory LRU in front of the journal)")
		admit   = flag.String("admit", "", "admission overrides as class=rate:burst:queue, comma-separated; e.g. interactive=200:50:64,batch=50:16:256,refine=25:8:1024")

		twinMaxErr = flag.Float64("twin-max-err", 0.10, "auto estimator tolerance: serve the twin for families whose calibrated error bound is at most this fraction")

		retries    = flag.Int("retries", 1, "retry transient cold-compute failures up to this many extra attempts")
		jobTimeout = flag.Duration("job-timeout", 2*time.Minute, "per-attempt deadline for one cold compute (0 = none)")
		breaker    = flag.Int("breaker", 8, "trip a per-kernel-family circuit breaker after this many consecutive failures (0 = off)")
		cooldown   = flag.Duration("breaker-cooldown", 30*time.Second, "half-open a tripped family breaker after this long (0 = stay open)")

		traceFile = flag.String("trace", "", "append per-request causal event chains to this JSONL file (analyze with opmprof)")
		drainWait = flag.Duration("drain-timeout", time.Minute, "how long graceful shutdown waits for accepted work")
	)
	flag.Parse()

	classes := serve.DefaultClasses()
	if *admit != "" {
		if err := parseAdmit(*admit, classes); err != nil {
			fmt.Fprintln(os.Stderr, "opmserve:", err)
			return 2
		}
	}

	var st *store.Store
	reg := obs.NewRegistry()
	if *storeD != "" {
		var err error
		st, err = store.Open(*storeD, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "opmserve:", err)
			return 2
		}
	} else {
		fmt.Fprintln(os.Stderr, "opmserve: no -store: serving without a journal (cold results are not persisted)")
	}

	var tracer *obs.Tracer
	if *traceFile != "" {
		tracer = obs.NewTracer(0)
		if err := tracer.SinkFile(*traceFile); err != nil {
			fmt.Fprintln(os.Stderr, "opmserve:", err)
			return 2
		}
	}

	var policy *resilience.Policy
	if *retries > 0 || *breaker > 0 || *jobTimeout > 0 {
		policy = &resilience.Policy{
			MaxAttempts:      *retries + 1,
			JobTimeout:       *jobTimeout,
			BreakerThreshold: *breaker,
			BreakerCooldown:  *cooldown,
		}
	}

	srv, err := serve.New(serve.Config{
		Store:      st,
		Registry:   reg,
		Tracer:     tracer,
		Policy:     policy,
		Workers:    *workers,
		HotSet:     *hotSet,
		Router:     *router,
		Classes:    classes,
		TwinMaxErr: *twinMaxErr,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "opmserve:", err)
		return 2
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "opmserve:", err)
		return 2
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	fmt.Fprintf(os.Stderr, "opmserve: serving on http://%s (workers=%d router=%s hot=%d store=%s)\n",
		ln.Addr(), *workers, *router, *hotSet, *storeD)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errC := make(chan error, 1)
	go func() { errC <- httpSrv.Serve(ln) }()

	select {
	case err := <-errC:
		fmt.Fprintln(os.Stderr, "opmserve:", err)
		return 1
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting, finish every accepted request
	// (including queued admissions and background refinements), then
	// close the store so the journal ends on a clean compaction.
	fmt.Fprintln(os.Stderr, "opmserve: draining...")
	dctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	code := 0
	if err := srv.Drain(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "opmserve:", err)
		code = 1
	}
	if err := httpSrv.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "opmserve:", err)
		code = 1
	}
	if tracer != nil {
		if err := tracer.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "opmserve:", err)
		}
	}
	if st != nil {
		if err := st.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "opmserve:", err)
			code = 1
		}
	}
	fmt.Fprintln(os.Stderr, "opmserve: bye")
	return code
}

// parseAdmit applies "class=rate:burst:queue" overrides onto the
// default class set.
func parseAdmit(spec string, classes map[string]serve.ClassConfig) error {
	for _, part := range strings.Split(spec, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return fmt.Errorf("bad -admit entry %q (want class=rate:burst:queue)", part)
		}
		fields := strings.Split(val, ":")
		if len(fields) != 3 {
			return fmt.Errorf("bad -admit entry %q (want class=rate:burst:queue)", part)
		}
		rate, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return fmt.Errorf("bad -admit rate in %q: %v", part, err)
		}
		burst, err := strconv.Atoi(fields[1])
		if err != nil {
			return fmt.Errorf("bad -admit burst in %q: %v", part, err)
		}
		queue, err := strconv.Atoi(fields[2])
		if err != nil {
			return fmt.Errorf("bad -admit queue in %q: %v", part, err)
		}
		classes[name] = serve.ClassConfig{Rate: rate, Burst: burst, Queue: queue}
	}
	return nil
}
