// Command opmbench reproduces the paper's tables and figures. Each
// experiment renders its figure as text, prints headline findings, and
// (with -out) writes CSV series suitable for replotting.
//
// Usage:
//
//	opmbench -list
//	opmbench -exp fig7            # one experiment
//	opmbench -exp all -out results # everything, CSVs under results/
//	opmbench -exp fig9 -full       # the complete 968-matrix sweep
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/harness"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment ID (see -list), or \"all\"")
		full    = flag.Bool("full", false, "run the paper's complete sweeps (968 matrices, fine grids)")
		out     = flag.String("out", "", "directory for CSV output")
		list    = flag.Bool("list", false, "list experiment IDs and exit")
		quiet   = flag.Bool("q", false, "suppress rendered figures (findings only)")
		timeRun = flag.Bool("time", true, "print per-experiment wall time")
	)
	flag.Parse()

	if *list {
		for _, e := range harness.RegistryWithExtensions() {
			fmt.Printf("%-14s %s\n", e.ID, e.Title)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "opmbench: -exp required (or -list); e.g. -exp fig7 or -exp all")
		os.Exit(2)
	}

	var ids []string
	switch *exp {
	case "all":
		ids = harness.IDs()
	case "all+ext":
		ids = append(harness.IDs(), harness.ExtensionIDs()...)
	case "ext":
		ids = harness.ExtensionIDs()
	default:
		ids = strings.Split(*exp, ",")
	}
	opt := harness.Options{Full: *full, OutDir: *out}
	failed := false
	for _, id := range ids {
		e, err := harness.Get(strings.TrimSpace(id))
		if err != nil {
			fmt.Fprintln(os.Stderr, "opmbench:", err)
			os.Exit(2)
		}
		t0 := time.Now()
		rep, err := e.Run(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "opmbench: %s failed: %v\n", e.ID, err)
			failed = true
			continue
		}
		if *timeRun {
			fmt.Printf("==== %s [%s] ====\n", e.Title, time.Since(t0).Round(time.Millisecond))
		} else {
			fmt.Printf("==== %s ====\n", e.Title)
		}
		if !*quiet {
			fmt.Println(rep.Text)
		}
		for _, f := range rep.Findings {
			fmt.Println("finding:", f)
		}
		if err := rep.WriteCSVs(*out); err != nil {
			fmt.Fprintln(os.Stderr, "opmbench:", err)
			failed = true
		}
		fmt.Println()
	}
	if failed {
		os.Exit(1)
	}
}
