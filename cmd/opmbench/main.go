// Command opmbench reproduces the paper's tables and figures. Each
// experiment renders its figure as text, prints headline findings, and
// (with -out) writes CSV series suitable for replotting. Sweeps run on
// the concurrent sweep engine; -workers bounds its pool and -timeout
// aborts a run that exceeds its wall-clock budget.
//
// The observability flags never change report bytes: stdout (and -out
// CSVs) stay byte-identical whether telemetry is on or off. Metrics,
// logs and profiles go to their own files or stderr.
//
// Usage:
//
//	opmbench -list
//	opmbench -exp fig7                  # one experiment
//	opmbench -exp all -out results      # everything, CSVs under results/
//	opmbench -exp fig9 -full            # the complete 968-matrix sweep
//	opmbench -exp fig9 -workers 1       # sequential baseline
//	opmbench -exp all -timeout 10m      # bound the whole run
//	opmbench -exp fig9 -progress        # live done/total/ETA on stderr
//	opmbench -exp all -store cache      # checkpoint results; rerun is warm
//	opmbench -exp all -store cache -resume   # continue an interrupted run
//	opmbench -exp fig9 -store cache -force   # recompute, overwrite cache
//	opmbench -exp fig7 -estimator twin       # analytic twin, no simulation
//	opmbench -exp all -estimator auto -twin-max-err 0.10  # twin where calibrated
//	opmbench -exp all -strict           # dropped jobs fail the run
//	opmbench -exp fig9 -metrics out.json       # manifest + registry dump
//	opmbench -exp fig9 -trace run.jsonl        # per-job event chains (see opmprof)
//	opmbench -exp fig9 -log-level debug        # structured logs on stderr
//	opmbench -exp all -pprof localhost:6060    # live pprof/expvar/metrics
//	opmbench -exp fig7 -cpuprofile cpu.out     # CPU profile of the run
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"repro/internal/faultinject"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/store"
	"repro/internal/sweep"
	"repro/internal/twin"
)

func main() { os.Exit(run()) }

// run is main with working defers, so profiles and metrics dumps are
// flushed on every exit path.
func run() int {
	var (
		exp      = flag.String("exp", "", "experiment ID (see -list), or \"all\"")
		full     = flag.Bool("full", false, "run the paper's complete sweeps (968 matrices, fine grids)")
		out      = flag.String("out", "", "directory for CSV output")
		list     = flag.Bool("list", false, "list experiment IDs and exit")
		quiet    = flag.Bool("q", false, "suppress rendered figures (findings only)")
		timeRun  = flag.Bool("time", true, "print per-experiment wall time")
		workers  = flag.Int("workers", 0, "sweep worker pool size (0 = GOMAXPROCS, 1 = sequential)")
		timeout  = flag.Duration("timeout", 0, "abort the whole run after this long (0 = no limit); bounds total wall clock across every experiment, unlike -job-timeout which bounds one sweep job attempt")
		progress = flag.Bool("progress", false, "report sweep progress (done/total/ETA) on stderr")
		strict   = flag.Bool("strict", false, "exit non-zero when a sweep dropped jobs (partial reports are still written)")

		retries    = flag.Int("retries", 0, "retry transient sweep-job failures up to this many extra attempts (capped exponential backoff, seeded jitter)")
		jobTimeout = flag.Duration("job-timeout", 0, "per-attempt deadline for one sweep job (0 = none); an attempt that exceeds it fails retryably and counts toward -retries, while -timeout still bounds the whole run")
		breaker    = flag.Int("breaker", 0, "trip a per-sweep circuit breaker after this many consecutive dropped jobs, failing the sweep's remaining jobs fast (0 = off)")
		faults     = flag.String("faults", "", "chaos fault-injection spec, e.g. \"seed=7,job:transient@0.1,store:torn@0.5\" (points here: job, result, store; kinds: transient, permanent, panic, delay, corrupt, torn; the proc/coord points are opmshard's — see README fault grammar)")

		estimator  = flag.String("estimator", "exact", "result estimator: exact (per-access simulation), twin (calibrated analytic model), or auto (twin where calibrated error permits, exact elsewhere)")
		twinMaxErr = flag.Float64("twin-max-err", 0.10, "with -estimator=auto: serve the twin only for kernel families whose calibrated error bound is at most this fraction")

		storeDir = flag.String("store", "", "persistent result store directory: cached jobs are reused, completed jobs are checkpointed as they finish")
		resume   = flag.Bool("resume", false, "continue an interrupted run from an existing -store (errors if the store does not exist yet)")
		force    = flag.Bool("force", false, "with -store: recompute every job, overwriting cached entries")

		metrics    = flag.String("metrics", "", "write manifest + metrics registry as JSON to this file at exit")
		traceFile  = flag.String("trace", "", "append every sweep job's causal event chain to this JSONL file (analyze with opmprof, export to Perfetto)")
		logLevel   = flag.String("log-level", "", "structured logging on stderr at this level (debug|info|warn|error; off when empty)")
		logJSON    = flag.Bool("log-json", false, "emit structured logs as JSON instead of text (needs -log-level)")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof, expvar and live /metrics on this address (e.g. localhost:6060)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	)
	flag.Parse()

	if *list {
		fmt.Print(harness.List())
		return 0
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "opmbench: -exp required (or -list); e.g. -exp fig7 or -exp all")
		return 2
	}
	if *resume && *storeDir == "" {
		fmt.Fprintln(os.Stderr, "opmbench: -resume requires -store")
		return 2
	}
	if *force && *storeDir == "" {
		fmt.Fprintln(os.Stderr, "opmbench: -force requires -store")
		return 2
	}
	if *resume {
		// -resume promises to continue earlier work; a missing directory
		// means there is nothing to continue (likely a typo'd path).
		if _, err := os.Stat(*storeDir); err != nil {
			fmt.Fprintf(os.Stderr, "opmbench: -resume: nothing to resume at %s: %v\n", *storeDir, err)
			return 2
		}
	}

	var ids []string
	switch *exp {
	case "all":
		ids = harness.IDs()
	case "all+ext":
		ids = append(harness.IDs(), harness.ExtensionIDs()...)
	case "ext":
		ids = harness.ExtensionIDs()
	default:
		ids = strings.Split(*exp, ",")
	}

	// Observability setup: registry (for -metrics/-pprof), structured
	// logger, run manifest, CPU profile. All of it is off by default
	// and none of it touches stdout.
	var reg *obs.Registry
	if *metrics != "" || *pprofAddr != "" || *faults != "" {
		// A chaos run always gets a registry: the fault/retry/breaker
		// counters are the run's evidence of what actually fired.
		reg = obs.NewRegistry()
	}
	var logger *slog.Logger
	if *logLevel != "" {
		lvl, err := obs.ParseLevel(*logLevel)
		if err != nil {
			fmt.Fprintln(os.Stderr, "opmbench:", err)
			return 2
		}
		logger = obs.NewLogger(os.Stderr, lvl, *logJSON)
	}
	manifest := obs.NewManifest("opmbench")
	manifest.Workers = *workers
	manifest.Machines = harness.PlatformMatrix()
	manifest.ConfigHash = obs.Hash(*exp, *full, *workers, timeout.String(), *storeDir, *resume, *force, *strict)

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "opmbench:", err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "opmbench:", err)
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *pprofAddr != "" {
		srv, addr, err := obs.Serve(*pprofAddr, reg, func() *obs.Manifest { return manifest })
		if err != nil {
			fmt.Fprintln(os.Stderr, "opmbench:", err)
			return 2
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "opmbench: telemetry on http://%s (/debug/pprof/, /debug/vars, /metrics)\n", addr)
	}
	// The dump runs deferred so a -timeout abort still leaves a
	// metrics file behind for the post-mortem.
	if *metrics != "" {
		defer func() {
			manifest.Finish()
			if err := reg.WriteFile(*metrics, manifest); err != nil {
				fmt.Fprintln(os.Stderr, "opmbench:", err)
			}
		}()
	}
	if reg != nil {
		defer func() {
			if rep := reg.SpanReport(); rep != "" {
				fmt.Fprint(os.Stderr, rep)
			}
		}()
	}
	var tracer *obs.Tracer
	if *traceFile != "" {
		tracer = obs.NewTracer(0)
		if err := tracer.SinkFile(*traceFile); err != nil {
			fmt.Fprintln(os.Stderr, "opmbench:", err)
			return 2
		}
		defer func() {
			emitted := tracer.Emitted()
			if err := tracer.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "opmbench: trace sink:", err)
			}
			fmt.Fprintf(os.Stderr, "opmbench: trace: %d events -> %s (opmprof -trace %s)\n",
				emitted, *traceFile, *traceFile)
		}()
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	est, err := twin.Select(*estimator, *twinMaxErr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "opmbench: %v\n", err)
		return 2
	}
	opt := harness.Options{Full: *full, OutDir: *out, Workers: *workers, Obs: reg, Log: logger, Force: *force, Estimator: est, Trace: tracer}
	if *retries > 0 || *jobTimeout > 0 || *breaker > 0 {
		opt.Resilience = &resilience.Policy{
			MaxAttempts:      *retries + 1,
			JobTimeout:       *jobTimeout,
			BreakerThreshold: *breaker,
		}
	}
	var inj *faultinject.Injector
	if *faults != "" {
		var err error
		if inj, err = faultinject.Parse(*faults); err != nil {
			fmt.Fprintln(os.Stderr, "opmbench:", err)
			return 2
		}
		// Chaos without retries silently drops every faulted cell;
		// faults are injected to be healed, so say what is active.
		inj.Bind(reg)
		opt.Inject = inj
		fmt.Fprintf(os.Stderr, "opmbench: chaos active: %s (retries=%d, job-timeout=%s, breaker=%d)\n",
			inj, *retries, *jobTimeout, *breaker)
		defer func() {
			fmt.Fprintf(os.Stderr, "opmbench: chaos counters:\n%s", chaosCounters(reg))
		}()
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "opmbench:", err)
			return 2
		}
		st.SetInjector(inj)
		defer func() {
			stats := st.Stats()
			if err := st.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "opmbench: store close:", err)
			}
			fmt.Fprintf(os.Stderr, "opmbench: store %s: %d cached hits, %d misses, %d committed, %d live entries\n",
				*storeDir, stats.Hits, stats.Misses, stats.Commits, st.Len())
		}()
		opt.Store = st
	}
	if *progress {
		opt.Progress = func(p sweep.Progress) {
			fmt.Fprintf(os.Stderr, "\rsweep %d/%d (eta %s)   ", p.Done, p.Total, p.ETA.Round(time.Second))
			if p.Done == p.Total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	failed := false
	for _, id := range ids {
		e, err := harness.Get(strings.TrimSpace(id))
		if err != nil {
			fmt.Fprintln(os.Stderr, "opmbench:", err)
			return 2
		}
		t0 := time.Now()
		rep, err := e.Run(ctx, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "opmbench: %s failed: %v\n", e.ID, err)
			if errors.Is(err, context.DeadlineExceeded) {
				fmt.Fprintln(os.Stderr, "opmbench: -timeout exceeded, stopping")
				return 1
			}
			failed = true
			continue
		}
		if *timeRun {
			fmt.Printf("==== %s [%s] ====\n", e.Title, time.Since(t0).Round(time.Millisecond))
		} else {
			fmt.Printf("==== %s ====\n", e.Title)
		}
		if !*quiet {
			fmt.Println(rep.Text)
		}
		for _, f := range rep.Findings {
			fmt.Println("finding:", f)
		}
		if err := rep.WriteCSVs(*out); err != nil {
			fmt.Fprintln(os.Stderr, "opmbench:", err)
			failed = true
		}
		if *strict && rep.Dropped > 0 {
			fmt.Fprintf(os.Stderr, "opmbench: -strict: %s dropped %d job(s); partial report written\n", e.ID, rep.Dropped)
			failed = true
		}
		fmt.Println()
	}
	if failed {
		return 1
	}
	return 0
}

// chaosCounters renders the fault-injection and resilience counters of
// a chaos run, sorted by name — the stderr evidence of what fired.
func chaosCounters(reg *obs.Registry) string {
	snap := reg.Snapshot()
	var names []string
	for name := range snap.Counters {
		if strings.HasPrefix(name, "fault/") || strings.HasPrefix(name, "resilience/") ||
			name == "store/torn_writes" || name == "store/corrupt_writes" || name == "store/write_repairs" {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		fmt.Fprintf(&b, "  %-36s %d\n", name, snap.Counters[name])
	}
	return b.String()
}
