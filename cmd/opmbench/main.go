// Command opmbench reproduces the paper's tables and figures. Each
// experiment renders its figure as text, prints headline findings, and
// (with -out) writes CSV series suitable for replotting. Sweeps run on
// the concurrent sweep engine; -workers bounds its pool and -timeout
// aborts a run that exceeds its wall-clock budget.
//
// Usage:
//
//	opmbench -list
//	opmbench -exp fig7                  # one experiment
//	opmbench -exp all -out results      # everything, CSVs under results/
//	opmbench -exp fig9 -full            # the complete 968-matrix sweep
//	opmbench -exp fig9 -workers 1       # sequential baseline
//	opmbench -exp all -timeout 10m      # bound the whole run
//	opmbench -exp fig9 -progress        # live done/total/ETA on stderr
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/harness"
	"repro/internal/sweep"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment ID (see -list), or \"all\"")
		full     = flag.Bool("full", false, "run the paper's complete sweeps (968 matrices, fine grids)")
		out      = flag.String("out", "", "directory for CSV output")
		list     = flag.Bool("list", false, "list experiment IDs and exit")
		quiet    = flag.Bool("q", false, "suppress rendered figures (findings only)")
		timeRun  = flag.Bool("time", true, "print per-experiment wall time")
		workers  = flag.Int("workers", 0, "sweep worker pool size (0 = GOMAXPROCS, 1 = sequential)")
		timeout  = flag.Duration("timeout", 0, "abort the whole run after this long (0 = no limit)")
		progress = flag.Bool("progress", false, "report sweep progress (done/total/ETA) on stderr")
	)
	flag.Parse()

	if *list {
		for _, e := range harness.RegistryWithExtensions() {
			fmt.Printf("%-14s %s\n", e.ID, e.Title)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "opmbench: -exp required (or -list); e.g. -exp fig7 or -exp all")
		os.Exit(2)
	}

	var ids []string
	switch *exp {
	case "all":
		ids = harness.IDs()
	case "all+ext":
		ids = append(harness.IDs(), harness.ExtensionIDs()...)
	case "ext":
		ids = harness.ExtensionIDs()
	default:
		ids = strings.Split(*exp, ",")
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	opt := harness.Options{Full: *full, OutDir: *out, Workers: *workers}
	if *progress {
		opt.Progress = func(p sweep.Progress) {
			fmt.Fprintf(os.Stderr, "\rsweep %d/%d (eta %s)   ", p.Done, p.Total, p.ETA.Round(time.Second))
			if p.Done == p.Total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	failed := false
	for _, id := range ids {
		e, err := harness.Get(strings.TrimSpace(id))
		if err != nil {
			fmt.Fprintln(os.Stderr, "opmbench:", err)
			os.Exit(2)
		}
		t0 := time.Now()
		rep, err := e.Run(ctx, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "opmbench: %s failed: %v\n", e.ID, err)
			if errors.Is(err, context.DeadlineExceeded) {
				fmt.Fprintln(os.Stderr, "opmbench: -timeout exceeded, stopping")
				os.Exit(1)
			}
			failed = true
			continue
		}
		if *timeRun {
			fmt.Printf("==== %s [%s] ====\n", e.Title, time.Since(t0).Round(time.Millisecond))
		} else {
			fmt.Printf("==== %s ====\n", e.Title)
		}
		if !*quiet {
			fmt.Println(rep.Text)
		}
		for _, f := range rep.Findings {
			fmt.Println("finding:", f)
		}
		if err := rep.WriteCSVs(*out); err != nil {
			fmt.Fprintln(os.Stderr, "opmbench:", err)
			failed = true
		}
		fmt.Println()
	}
	if failed {
		os.Exit(1)
	}
}
