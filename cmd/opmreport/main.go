// Command opmreport prints the reproduction's headline summary: the
// platform inventory (Table 3), the kernel characteristics (Table 2),
// and the eDRAM/MCDRAM summary tables (Tables 4, 5) with their
// findings — the quickest way to compare this reproduction against the
// paper's claims.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/harness"
	"repro/internal/platform"
)

func main() {
	full := flag.Bool("full", false, "use the complete sweeps (slow)")
	flag.Parse()

	fmt.Println("Reproduction summary: \"The Real Impact of Modern On-Package Memory on HPC Scientific Kernels\" (SC'17)")
	fmt.Println()
	fmt.Println("Table 3: platform configuration (simulated, scaled capacities per DESIGN.md)")
	for _, p := range platform.All() {
		fmt.Printf("  %-10s %-16s %2d cores @ %.1f GHz, DP %.1f GFlop/s, %s %d GB @ %.1f GB/s, %s %d MB @ %.1f GB/s (scale 1/%d)\n",
			p.Name, p.CPU, p.Cores, p.FreqGHz, p.DPGFlops,
			p.DRAMKind, p.DRAMBytes>>30, p.DRAMGBs,
			p.OPMKind, p.OPMBytes>>20, p.OPMGBs, p.Scale)
	}
	fmt.Println()

	opt := harness.Options{Full: *full}
	for _, id := range []string{"table2", "table4", "table5", "fig26", "fig27"} {
		e, err := harness.Get(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "opmreport:", err)
			os.Exit(1)
		}
		rep, err := e.Run(context.Background(), opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "opmreport: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println("====", e.Title, "====")
		fmt.Println(rep.Text)
		for _, f := range rep.Findings {
			fmt.Println("finding:", f)
		}
		fmt.Println()
	}
}
