// Command matgen generates and inspects the synthetic sparse-matrix
// collection that stands in for the paper's 968 UF matrices.
//
// Usage:
//
//	matgen -list                     # list all 968 specs
//	matgen -stats                    # collection statistics
//	matgen -id 42 -scale 64 -o m.mtx # write one matrix (MatrixMarket)
//	matgen -export dir -stride 64    # export a subset as .mtx files
//	matgen -gen -n 4096 -density 0.01 -o m.mtx # custom random matrix
//
// Inputs are validated up front: zero or negative dimensions, scales
// and strides, and NaN or out-of-range densities are rejected with an
// error naming the parameter instead of panicking mid-generation.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/sparse"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list collection specs")
		stats   = flag.Bool("stats", false, "print collection statistics")
		id      = flag.Int("id", -1, "spec ID to instantiate")
		scale   = flag.Int64("scale", 64, "capacity scale divisor (16=Broadwell, 64=KNL, 1=paper size)")
		out     = flag.String("o", "", "output .mtx path for -id")
		export  = flag.String("export", "", "directory to export matrices into")
		stride  = flag.Int("stride", 64, "export every stride-th spec")
		gen     = flag.Bool("gen", false, "generate one custom uniform-random matrix (-n, -density, -seed)")
		n       = flag.Int("n", 4096, "custom matrix dimension for -gen")
		density = flag.Float64("density", 0.01, "custom nonzero density in (0,1] for -gen")
		seed    = flag.Uint64("seed", 1, "custom generator seed for -gen")
	)
	flag.Parse()
	if *scale < 1 {
		fatal(fmt.Errorf("-scale must be >= 1, got %d", *scale))
	}
	if *stride < 1 {
		fatal(fmt.Errorf("-stride must be >= 1, got %d", *stride))
	}
	specs := sparse.Collection()

	switch {
	case *gen:
		m, err := sparse.RandomDensity(*n, *density, *seed)
		if err != nil {
			fatal(err)
		}
		mt := sparse.Measure(m)
		fmt.Printf("random: %dx%d, nnz %d, avg row %.1f, footprint %d bytes\n",
			mt.Rows, mt.Rows, mt.NNZ, mt.AvgRowNNZ, mt.FootprintBytes)
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			if err := sparse.WriteMatrixMarket(f, m); err != nil {
				fatal(err)
			}
			fmt.Println("wrote", *out)
		}
	case *list:
		fmt.Printf("%-5s %-22s %-10s %14s %8s\n", "id", "name", "family", "paper_bytes", "rownnz")
		for _, sp := range specs {
			fmt.Printf("%-5d %-22s %-10s %14d %8d\n", sp.ID, sp.Name, sp.Family, sp.PaperFootprint, sp.RowNNZ)
		}
	case *stats:
		famCount := map[sparse.Family]int{}
		var minFP, maxFP int64 = 1 << 62, 0
		for _, sp := range specs {
			famCount[sp.Family]++
			if sp.PaperFootprint < minFP {
				minFP = sp.PaperFootprint
			}
			if sp.PaperFootprint > maxFP {
				maxFP = sp.PaperFootprint
			}
		}
		fmt.Printf("collection: %d matrices, footprints %d MB .. %d MB (paper scale)\n",
			len(specs), minFP>>20, maxFP>>20)
		for fam := sparse.Family(0); fam < sparse.NumFamilies; fam++ {
			fmt.Printf("  %-10s %d\n", fam, famCount[fam])
		}
	case *id >= 0:
		if *id >= len(specs) {
			fatal(fmt.Errorf("id %d out of range (0..%d)", *id, len(specs)-1))
		}
		sp := specs[*id]
		m, err := sp.Checked(*scale)
		if err != nil {
			fatal(err)
		}
		mt := sparse.Measure(m)
		fmt.Printf("%s: %dx%d, nnz %d, avg row %.1f, bandwidth %d, footprint %d bytes (sim)\n",
			sp.Name, mt.Rows, mt.Rows, mt.NNZ, mt.AvgRowNNZ, mt.Bandwidth, mt.FootprintBytes)
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			if err := sparse.WriteMatrixMarket(f, m); err != nil {
				fatal(err)
			}
			fmt.Println("wrote", *out)
		}
	case *export != "":
		if err := os.MkdirAll(*export, 0o755); err != nil {
			fatal(err)
		}
		n := 0
		for _, sp := range sparse.Subsample(specs, *stride) {
			m, err := sp.Checked(*scale)
			if err != nil {
				fatal(err)
			}
			path := filepath.Join(*export, sp.Name+".mtx")
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if err := sparse.WriteMatrixMarket(f, m); err != nil {
				f.Close()
				fatal(err)
			}
			f.Close()
			n++
		}
		fmt.Printf("exported %d matrices to %s\n", n, *export)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "matgen:", err)
	os.Exit(1)
}
