// Command opmtrace inspects the simulated memory behaviour of one
// kernel run: per-level demand/writeback bytes, the binding bound of
// the timing model, effective MLP, and the power estimate — the
// diagnostic view behind every number the harness reports.
//
// Usage:
//
//	opmtrace -platform broadwell -mode edram -kernel stream -mb 64
//	opmtrace -platform knl -mode flat -kernel spmv -matrix 42
//	opmtrace -platform knl -mode cache -kernel gemm -n 16384 -nb 1024
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/memsim"
	"repro/internal/platform"
	"repro/internal/power"
	"repro/internal/sparse"
	"repro/internal/trace"
)

func main() {
	var (
		platName = flag.String("platform", "broadwell", "broadwell | knl | skylake")
		modeName = flag.String("mode", "ddr", "ddr | edram | cache | flat | hybrid | edram-ms")
		kernel   = flag.String("kernel", "stream", "stream | stencil | fft | spmv | sptrans | sptrsv | gemm | cholesky")
		mb       = flag.Int64("mb", 64, "footprint in MB at paper scale (stream/stencil/fft)")
		matrixID = flag.Int("matrix", 0, "collection spec ID (sparse kernels)")
		n        = flag.Int("n", 8192, "matrix order (dense kernels)")
		nb       = flag.Int("nb", 1024, "tile size (dense kernels)")
	)
	flag.Parse()

	plat, err := findPlatform(*platName)
	if err != nil {
		fatal(err)
	}
	mode, err := findMode(plat, *modeName)
	if err != nil {
		fatal(err)
	}
	m, err := core.NewMachine(plat, mode)
	if err != nil {
		fatal(err)
	}

	var res memsim.Result
	switch *kernel {
	case "gemm", "cholesky":
		kind := trace.DenseGEMM
		if *kernel == "cholesky" {
			kind = trace.DenseCholesky
		}
		res, err = m.RunDense(kind, *n, *nb)
	case "spmv", "sptrans", "sptrsv":
		specs := sparse.Collection()
		if *matrixID < 0 || *matrixID >= len(specs) {
			fatal(fmt.Errorf("matrix ID %d out of range", *matrixID))
		}
		mat := specs[*matrixID].Instantiate(plat.Scale)
		var w trace.Workload
		switch *kernel {
		case "spmv":
			w = &trace.SpMV{M: mat}
		case "sptrans":
			w = &trace.SpTRANS{M: mat}
		default:
			w, err = trace.NewSpTRSV(mat)
			if err != nil {
				fatal(err)
			}
		}
		fmt.Printf("matrix %s: %d rows, %d nnz\n", specs[*matrixID].Name, mat.Rows, mat.NNZ())
		res, err = m.Run(w)
	case "stream", "stencil", "fft":
		simFP := plat.ScaledBytes(*mb << 20)
		var w trace.Workload
		switch *kernel {
		case "stream":
			w = trace.NewStream(simFP)
		case "stencil":
			w = trace.NewStencil(simFP, plat.Scale)
		default:
			w = trace.NewFFT(simFP)
		}
		res, err = m.Run(w)
	default:
		fatal(fmt.Errorf("unknown kernel %q", *kernel))
	}
	if err != nil {
		fatal(err)
	}

	fmt.Printf("\n%s on %s\n", *kernel, m.Label())
	fmt.Printf("  throughput:     %.2f GFlop/s (%.2f GB/s memory-side)\n", res.GFlops, res.MemGBs)
	fmt.Printf("  modelled time:  %.4g s\n", res.Seconds)
	fmt.Printf("  binding bound:  %s\n", res.Bound)
	fmt.Printf("  footprint:      %d MB (paper scale)\n", res.FootprintBytes>>20)
	fmt.Printf("  effective MLP:  %.1f\n", res.EffectiveMLP)
	fmt.Println("  per-source traffic (measured pass):")
	for s := memsim.SrcL1; s <= memsim.SrcDDR; s++ {
		d := res.Traffic.Bytes[s]
		wb := res.Traffic.WBBytes[s]
		if d == 0 && wb == 0 {
			continue
		}
		fmt.Printf("    %-7s demand %10.2f MB   writeback/install %10.2f MB   bound %.4g s\n",
			s, float64(d)/(1<<20), float64(wb)/(1<<20), res.BWSec[s])
	}
	if res.Traffic.MCTagLines > 0 {
		fmt.Printf("    MCDRAM tag consultations: %d lines\n", res.Traffic.MCTagLines)
	}
	if res.Traffic.SplitFlat {
		fmt.Println("    !! flat allocation straddles MCDRAM and DDR (split pathology)")
	}
	if pm, err := power.ForPlatform(plat.Name); err == nil {
		s := pm.Estimate(res)
		fmt.Printf("  power estimate: pkg %.1f W, dram %.1f W, energy %.4g J\n",
			s.PkgW, s.DRAMW, pm.EnergyJ(res))
	}
}

func findPlatform(name string) (*platform.Platform, error) {
	for _, p := range platform.AllWithExtensions() {
		if p.Name == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("unknown platform %q", name)
}

func findMode(p *platform.Platform, name string) (memsim.Mode, error) {
	for _, m := range p.Modes {
		if m.String() == name {
			return m, nil
		}
	}
	return 0, fmt.Errorf("platform %s does not support mode %q (supported: %v)", p.Name, name, p.Modes)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "opmtrace:", err)
	os.Exit(1)
}
